//! OpenQASM 2.0 (subset) import and export.
//!
//! Supports the gate vocabulary the benchmarks use — `h x y z s sdg t tdg
//! sx cx cz ccx swap rz ry rx u1 p id barrier` — over a single quantum
//! register, plus the non-unitary statements `measure q[a] -> c[b]`,
//! `reset q[a]` and classically controlled gates `if (c==v) gate` over a
//! single classical register of at most 64 bits. This is enough to
//! round-trip every circuit this workspace generates (including the
//! teleportation benchmark) and to load common benchmark files.
//!
//! # Examples
//!
//! ```
//! use aq_circuits::qasm::{parse_qasm, to_qasm};
//!
//! let src = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     h q[0];
//!     cx q[0], q[1];
//! "#;
//! let c = parse_qasm(src)?;
//! assert_eq!(c.n_qubits(), 2);
//! assert_eq!(c.len(), 2);
//! let text = to_qasm(&c).expect("gate circuits always serialise");
//! assert!(text.contains("cx q[0], q[1];"));
//! # Ok::<(), aq_circuits::qasm::ParseQasmError>(())
//! ```

use std::error::Error;
use std::fmt;

use aq_dd::GateMatrix;

use crate::{Circuit, Op};

/// Error produced by [`parse_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

/// Parses an OpenQASM 2.0 subset into a [`Circuit`].
///
/// # Errors
///
/// Returns an error for unknown gates, malformed statements, missing or
/// repeated `qreg`/`creg` declarations, out-of-range qubit or classical
/// bit indices, or `if` conditions that are not of the form `c == value`.
/// `barrier`, `id` and comments are accepted and ignored.
pub fn parse_qasm(src: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut reg_name = String::new();
    let mut creg: Option<(String, u32)> = None;

    for (lineno, raw_line) in src.lines().enumerate() {
        let lineno = lineno + 1;
        // strip // comments
        let line = raw_line.split("//").next().unwrap_or("");
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let lower = stmt.to_ascii_lowercase();
            if lower.starts_with("openqasm") || lower.starts_with("include") {
                continue;
            }
            if let Some(rest) = lower.strip_prefix("qreg") {
                if circuit.is_some() {
                    return Err(ParseQasmError::new(lineno, "multiple qreg declarations"));
                }
                let (name, size) = parse_reg(rest.trim(), lineno)?;
                reg_name = name;
                let mut c = Circuit::new(size);
                if let Some((_, bits)) = &creg {
                    c.widen_cbits(*bits);
                }
                circuit = Some(c);
                continue;
            }
            if lower.starts_with("creg") {
                if creg.is_some() {
                    return Err(ParseQasmError::new(lineno, "multiple creg declarations"));
                }
                let (name, size) = parse_reg(stmt[4..].trim(), lineno)?;
                if size > 64 {
                    return Err(ParseQasmError::new(
                        lineno,
                        "classical register is limited to 64 bits",
                    ));
                }
                if let Some(c) = circuit.as_mut() {
                    c.widen_cbits(size);
                }
                creg = Some((name, size));
                continue;
            }
            if lower.starts_with("barrier") {
                continue;
            }
            let c = circuit
                .as_mut()
                .ok_or_else(|| ParseQasmError::new(lineno, "gate before qreg declaration"))?;
            parse_stmt(c, &reg_name, &creg, stmt, lineno)?;
        }
    }
    circuit.ok_or_else(|| ParseQasmError::new(0, "no qreg declaration found"))
}

/// Dispatches one statement: `measure`, `reset`, `if (...)` or a gate.
fn parse_stmt(
    c: &mut Circuit,
    reg: &str,
    creg: &Option<(String, u32)>,
    stmt: &str,
    lineno: usize,
) -> Result<(), ParseQasmError> {
    let lower = stmt.to_ascii_lowercase();
    if lower.starts_with("measure") {
        let (qubit, cbit) = parse_measure(&stmt[7..], reg, creg, c.n_qubits(), lineno)?;
        c.push_measure(qubit, cbit);
        return Ok(());
    }
    if lower.starts_with("reset") {
        let qubit = parse_qubit(stmt[5..].trim(), reg, c.n_qubits(), lineno)?;
        c.push_reset(qubit);
        return Ok(());
    }
    if lower.starts_with("if") {
        let (value, body) = parse_condition(&stmt[2..], creg, lineno)?;
        // Parse the body into a scratch circuit: a `swap` body expands to
        // three CNOTs, each of which gets its own conditional wrapper.
        let mut scratch = Circuit::new(c.n_qubits());
        parse_gate_stmt(&mut scratch, reg, body, lineno)?;
        for op in scratch.iter() {
            let Op::Gate { .. } = op else {
                return Err(ParseQasmError::new(
                    lineno,
                    "conditional bodies must be unitary gates",
                ));
            };
            c.push_conditional(value, op.clone());
        }
        return Ok(());
    }
    parse_gate_stmt(c, reg, stmt, lineno)
}

/// Parses `q[a] -> c[b]` (the part of a measure statement after the keyword).
fn parse_measure(
    rest: &str,
    reg: &str,
    creg: &Option<(String, u32)>,
    n_qubits: u32,
    lineno: usize,
) -> Result<(u32, u32), ParseQasmError> {
    let Some((name, bits)) = creg else {
        return Err(ParseQasmError::new(
            lineno,
            "measure before creg declaration",
        ));
    };
    let (q, cb) = rest.split_once("->").ok_or_else(|| {
        ParseQasmError::new(lineno, "malformed measure (expected `q[a] -> c[b]`)")
    })?;
    let qubit = parse_qubit(q.trim(), reg, n_qubits, lineno)?;
    let cbit = parse_qubit(cb.trim(), name, *bits, lineno)
        .map_err(|e| ParseQasmError::new(lineno, format!("in measure target: {}", e.message)))?;
    Ok((qubit, cbit))
}

/// Parses `(c == value) body` (the part of an `if` statement after the
/// keyword), returning the comparison value and the body statement.
fn parse_condition<'a>(
    rest: &'a str,
    creg: &Option<(String, u32)>,
    lineno: usize,
) -> Result<(u64, &'a str), ParseQasmError> {
    let Some((name, bits)) = creg else {
        return Err(ParseQasmError::new(lineno, "if before creg declaration"));
    };
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .ok_or_else(|| ParseQasmError::new(lineno, "malformed if (expected `if (c==v) gate`)"))?;
    let close = inner
        .find(')')
        .ok_or_else(|| ParseQasmError::new(lineno, "unclosed if condition"))?;
    let cond = &inner[..close];
    let body = inner[close + 1..].trim();
    let (lhs, rhs) = cond
        .split_once("==")
        .ok_or_else(|| ParseQasmError::new(lineno, "if condition must be `creg == value`"))?;
    if lhs.trim() != name {
        return Err(ParseQasmError::new(
            lineno,
            format!("unknown register `{}` in if condition", lhs.trim()),
        ));
    }
    let value: u64 = rhs
        .trim()
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad value in if condition"))?;
    if *bits < 64 && value >= 1u64 << *bits {
        return Err(ParseQasmError::new(
            lineno,
            format!("if condition value {value} exceeds the {bits}-bit register"),
        ));
    }
    if body.is_empty() {
        return Err(ParseQasmError::new(lineno, "if condition without a body"));
    }
    Ok((value, body))
}

fn parse_reg(rest: &str, lineno: usize) -> Result<(String, u32), ParseQasmError> {
    // form: name[size]
    let open = rest
        .find('[')
        .ok_or_else(|| ParseQasmError::new(lineno, "malformed qreg"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| ParseQasmError::new(lineno, "malformed qreg"))?;
    let name = rest[..open].trim().to_string();
    let size: u32 = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad register size"))?;
    if size == 0 {
        return Err(ParseQasmError::new(
            lineno,
            "register size must be positive",
        ));
    }
    Ok((name, size))
}

fn parse_gate_stmt(
    c: &mut Circuit,
    reg: &str,
    stmt: &str,
    lineno: usize,
) -> Result<(), ParseQasmError> {
    // split "name(params) q[a], q[b]"
    let (head, args_str) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(i) => stmt.split_at(i),
        None => {
            return Err(ParseQasmError::new(
                lineno,
                format!("malformed statement `{stmt}`"),
            ))
        }
    };
    let (name, params) = match head.find('(') {
        Some(i) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| ParseQasmError::new(lineno, "unclosed parameter list"))?;
            (&head[..i], parse_params(&head[i + 1..close], lineno)?)
        }
        None => (head, Vec::new()),
    };
    let name = name.trim().to_ascii_lowercase();
    if name == "id" || name == "barrier" {
        return Ok(());
    }

    let qubits: Vec<u32> = args_str
        .split(',')
        .map(|a| parse_qubit(a.trim(), reg, c.n_qubits(), lineno))
        .collect::<Result<_, _>>()?;

    let one = |lineno: usize| -> Result<u32, ParseQasmError> {
        qubits
            .first()
            .copied()
            .filter(|_| qubits.len() == 1)
            .ok_or_else(|| ParseQasmError::new(lineno, format!("`{name}` takes one qubit")))
    };
    let param = |k: usize| -> Result<f64, ParseQasmError> {
        if params.len() == k + 1 {
            Ok(params[k])
        } else {
            Err(ParseQasmError::new(
                lineno,
                format!("`{name}` takes {} parameter(s)", k + 1),
            ))
        }
    };

    match name.as_str() {
        "h" => c.push_gate(GateMatrix::h(), one(lineno)?, &[]),
        "x" => c.push_gate(GateMatrix::x(), one(lineno)?, &[]),
        "y" => c.push_gate(GateMatrix::y(), one(lineno)?, &[]),
        "z" => c.push_gate(GateMatrix::z(), one(lineno)?, &[]),
        "s" => c.push_gate(GateMatrix::s(), one(lineno)?, &[]),
        "sdg" => c.push_gate(GateMatrix::sdg(), one(lineno)?, &[]),
        "t" => c.push_gate(GateMatrix::t(), one(lineno)?, &[]),
        "tdg" => c.push_gate(GateMatrix::tdg(), one(lineno)?, &[]),
        "sx" => c.push_gate(GateMatrix::sx(), one(lineno)?, &[]),
        "rz" => c.push_gate(GateMatrix::rz(param(0)?), one(lineno)?, &[]),
        "ry" => c.push_gate(GateMatrix::ry(param(0)?), one(lineno)?, &[]),
        "rx" => c.push_gate(GateMatrix::rx(param(0)?), one(lineno)?, &[]),
        "p" | "u1" => c.push_gate(GateMatrix::phase(param(0)?), one(lineno)?, &[]),
        "cx" | "cnot" => {
            let [a, b] = two(&qubits, &name, lineno)?;
            c.push_gate(GateMatrix::x(), b, &[(a, true)]);
        }
        "cz" => {
            let [a, b] = two(&qubits, &name, lineno)?;
            c.push_gate(GateMatrix::z(), b, &[(a, true)]);
        }
        "swap" => {
            let [a, b] = two(&qubits, &name, lineno)?;
            c.push_gate(GateMatrix::x(), b, &[(a, true)]);
            c.push_gate(GateMatrix::x(), a, &[(b, true)]);
            c.push_gate(GateMatrix::x(), b, &[(a, true)]);
        }
        "ccx" | "toffoli" => {
            if qubits.len() != 3 {
                return Err(ParseQasmError::new(lineno, "`ccx` takes three qubits"));
            }
            c.push_gate(
                GateMatrix::x(),
                qubits[2],
                &[(qubits[0], true), (qubits[1], true)],
            );
        }
        other => {
            return Err(ParseQasmError::new(
                lineno,
                format!("unsupported gate `{other}`"),
            ));
        }
    }
    Ok(())
}

fn two(qubits: &[u32], name: &str, lineno: usize) -> Result<[u32; 2], ParseQasmError> {
    if qubits.len() == 2 {
        Ok([qubits[0], qubits[1]])
    } else {
        Err(ParseQasmError::new(
            lineno,
            format!("`{name}` takes two qubits"),
        ))
    }
}

fn parse_qubit(arg: &str, reg: &str, n: u32, lineno: usize) -> Result<u32, ParseQasmError> {
    let open = arg
        .find('[')
        .ok_or_else(|| ParseQasmError::new(lineno, format!("malformed qubit `{arg}`")))?;
    let close = arg
        .find(']')
        .ok_or_else(|| ParseQasmError::new(lineno, format!("malformed qubit `{arg}`")))?;
    let name = arg[..open].trim();
    if !reg.is_empty() && name != reg {
        return Err(ParseQasmError::new(
            lineno,
            format!("unknown register `{name}`"),
        ));
    }
    let idx: u32 = arg[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad qubit index"))?;
    if idx >= n {
        return Err(ParseQasmError::new(
            lineno,
            format!("qubit index {idx} out of range"),
        ));
    }
    Ok(idx)
}

/// Parses a comma-separated parameter list supporting numeric literals and
/// the forms `pi`, `-pi`, `pi/k`, `-pi/k`, `k*pi/m` used by benchmark files.
fn parse_params(s: &str, lineno: usize) -> Result<Vec<f64>, ParseQasmError> {
    s.split(',')
        .map(|p| parse_angle(p.trim(), lineno))
        .collect()
}

fn parse_angle(s: &str, lineno: usize) -> Result<f64, ParseQasmError> {
    if let Ok(v) = s.parse::<f64>() {
        return Ok(v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let value = if let Some((num, den)) = body.split_once('/') {
        let num = parse_pi_product(num.trim(), lineno)?;
        let den: f64 = den
            .trim()
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, format!("bad angle `{s}`")))?;
        num / den
    } else {
        parse_pi_product(body, lineno)?
    };
    Ok(if neg { -value } else { value })
}

fn parse_pi_product(s: &str, lineno: usize) -> Result<f64, ParseQasmError> {
    if s.eq_ignore_ascii_case("pi") {
        return Ok(std::f64::consts::PI);
    }
    if let Some((k, pi)) = s.split_once('*') {
        if pi.trim().eq_ignore_ascii_case("pi") {
            let k: f64 = k
                .trim()
                .parse()
                .map_err(|_| ParseQasmError::new(lineno, format!("bad angle `{s}`")))?;
            return Ok(k * std::f64::consts::PI);
        }
    }
    s.parse::<f64>()
        .map_err(|_| ParseQasmError::new(lineno, format!("bad angle `{s}`")))
}

/// Error produced by [`to_qasm`]: the operation (by index) that has no
/// OpenQASM 2.0 spelling, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmExportError {
    op_index: usize,
    message: String,
}

impl QasmExportError {
    fn new(op_index: usize, message: impl Into<String>) -> Self {
        QasmExportError {
            op_index,
            message: message.into(),
        }
    }

    /// 0-based index of the circuit operation that cannot be serialised.
    pub fn op_index(&self) -> usize {
        self.op_index
    }
}

impl fmt::Display for QasmExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM export error at op {}: {}",
            self.op_index, self.message
        )
    }
}

impl Error for QasmExportError {}

/// Serialises a circuit to OpenQASM 2.0, including `measure`, `reset` and
/// classically controlled (`if (c==v) gate`) statements. When the circuit
/// uses classical bits a `creg c[n];` declaration follows the `qreg` line,
/// so the output reparses to an equivalent circuit byte-stably:
/// `to_qasm(parse_qasm(text)) == text` for text this function produced.
///
/// # Errors
///
/// Returns an error if the circuit contains quantum-walk operators
/// ([`Op::MatchingEvolution`] / [`Op::Permutation`]) or gates outside the
/// QASM 2 vocabulary (plain QASM 2 has no controlled form beyond `cx`,
/// `cz` and `ccx`).
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmExportError> {
    use std::fmt::Write as _;
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    if circuit.n_cbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.n_cbits());
    }
    for (i, op) in circuit.iter().enumerate() {
        write_op(&mut out, i, op, "")?;
    }
    Ok(out)
}

/// Serialises one operation as a statement line, with `prefix` (empty or a
/// rendered `if (...) ` condition) before the gate name.
fn write_op(out: &mut String, i: usize, op: &Op, prefix: &str) -> Result<(), QasmExportError> {
    use std::fmt::Write as _;
    let (matrix, target, controls) = match op {
        Op::Measure { qubit, cbit } => {
            let _ = writeln!(out, "measure q[{qubit}] -> c[{cbit}];");
            return Ok(());
        }
        Op::Reset { qubit } => {
            let _ = writeln!(out, "reset q[{qubit}];");
            return Ok(());
        }
        Op::Conditional { value, op } => {
            if !prefix.is_empty() {
                return Err(QasmExportError::new(i, "nested if has no QASM 2 spelling"));
            }
            return write_op(out, i, op, &format!("if (c=={value}) "));
        }
        Op::Gate {
            matrix,
            target,
            controls,
        } => (matrix, target, controls),
        _ => {
            return Err(QasmExportError::new(
                i,
                "cannot serialise walk operators to QASM 2",
            ));
        }
    };
    let name = matrix.name();
    let base = name.split('(').next().unwrap_or(name).to_ascii_lowercase();
    let param = name
        .find('(')
        .map(|i| name[i..].to_string())
        .unwrap_or_default();
    match (base.as_str(), controls.len()) {
        (_, 0) => {
            let q = format!("q[{target}]");
            let g = match base.as_str() {
                "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" | "sx" => base.clone(),
                "p" => format!("u1{param}"),
                "rz" | "ry" | "rx" => format!("{base}{param}"),
                other => {
                    return Err(QasmExportError::new(
                        i,
                        format!("gate `{other}` has no QASM 2 spelling"),
                    ));
                }
            };
            let _ = writeln!(out, "{prefix}{g} {q};");
        }
        ("x", 1) if controls[0].1 => {
            let _ = writeln!(out, "{prefix}cx q[{}], q[{target}];", controls[0].0);
        }
        ("z", 1) if controls[0].1 => {
            let _ = writeln!(out, "{prefix}cz q[{}], q[{target}];", controls[0].0);
        }
        ("x", 2) if controls.iter().all(|c| c.1) => {
            let _ = writeln!(
                out,
                "{prefix}ccx q[{}], q[{}], q[{target}];",
                controls[0].0, controls[1].0
            );
        }
        _ => {
            return Err(QasmExportError::new(
                i,
                format!(
                    "controlled `{base}` with {} controls has no QASM 2 spelling",
                    controls.len()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];        // comment
            t q[1]; tdg q[2];
            cx q[0], q[1];
            ccx q[0], q[1], q[2];
            rz(pi/4) q[0];
            u1(-pi/2) q[1];
            measure q[0] -> c[0];
        "#;
        let c = parse_qasm(src).expect("parse");
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.n_cbits(), 3);
        assert_eq!(c.len(), 8);
        assert!(matches!(
            c.iter().last(),
            Some(Op::Measure { qubit: 0, cbit: 0 })
        ));
    }

    #[test]
    fn parse_measurement_statements() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[3];
            creg c[2];
            h q[0];
            measure q[0] -> c[1];
            reset q[2];
            if (c==2) x q[1];
            if(c==1) swap q[0], q[2];
        "#;
        let c = parse_qasm(src).expect("parse");
        assert_eq!(c.n_cbits(), 2);
        let ops: Vec<&Op> = c.iter().collect();
        // h, measure, reset, 1 conditional x, 3 conditional cx (swap)
        assert_eq!(ops.len(), 7);
        assert!(matches!(ops[1], Op::Measure { qubit: 0, cbit: 1 }));
        assert!(matches!(ops[2], Op::Reset { qubit: 2 }));
        assert!(matches!(ops[3], Op::Conditional { value: 2, .. }));
        assert!(matches!(ops[6], Op::Conditional { value: 1, .. }));
    }

    #[test]
    fn measurement_parse_errors_are_located() {
        let err =
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nmeasure q[0] -> c[0];").expect_err("no creg");
        assert!(err.to_string().contains("measure before creg"), "{err}");

        let err = parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nif (c==5) x q[0];")
            .expect_err("value too wide");
        assert!(err.to_string().contains("exceeds"), "{err}");

        let err =
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nif (c==1) measure q[0] -> c[0];")
                .expect_err("nonunitary body");
        assert!(err.to_string().contains("unsupported gate"), "{err}");

        let err = parse_qasm("OPENQASM 2.0;\nqreg q[1];\ncreg c[80];").expect_err("creg too wide");
        assert!(err.to_string().contains("limited to 64 bits"), "{err}");
    }

    #[test]
    fn roundtrip_measurement_is_byte_stable() {
        // export → parse → export must reproduce the text byte-for-byte
        let mut c = Circuit::new(3);
        c.push_gate(GateMatrix::t(), 0, &[]);
        c.extend_from(&crate::teleport());
        let text = to_qasm(&c).expect("teleport serialises");
        assert!(text.contains("creg c[2];"), "{text}");
        assert!(text.contains("measure q[1] -> c[0];"), "{text}");
        assert!(text.contains("if (c==3) z q[2];"), "{text}");
        let reparsed = parse_qasm(&text).expect("reparse");
        assert_eq!(reparsed.n_cbits(), 2);
        let text2 = to_qasm(&reparsed).expect("re-export");
        assert_eq!(text, text2, "round trip must be byte-stable");
    }

    #[test]
    fn parse_angles() {
        assert!((parse_angle("pi", 1).unwrap() - std::f64::consts::PI).abs() < 1e-15);
        assert!((parse_angle("-pi/2", 1).unwrap() + std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((parse_angle("3*pi/4", 1).unwrap() - 2.356194490192345).abs() < 1e-12);
        assert!((parse_angle("0.5", 1).unwrap() - 0.5).abs() < 1e-15);
        assert!(parse_angle("wat", 1).is_err());
    }

    #[test]
    fn errors_are_located() {
        let err = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nfoo q[0];").expect_err("bad gate");
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("unsupported gate `foo`"));

        let err = parse_qasm("OPENQASM 2.0;\nh q[0];").expect_err("no qreg");
        assert!(err.to_string().contains("gate before qreg"));

        let err = parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[4];").expect_err("range");
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        use aq_dd::QomegaContext;
        // grover(2)'s MCZ is a plain cz, so the whole circuit round-trips
        let small = crate::grover(2, 1);
        let text = to_qasm(&small).expect("grover(2) is pure gates");
        let reparsed = parse_qasm(&text).expect("reparse");
        let mut m1 = aq_dd::Manager::new(QomegaContext::new(), 2);
        let u1 = aq_sim_free_unitary(&mut m1, &small);
        let u2 = aq_sim_free_unitary(&mut m1, &reparsed);
        assert_eq!(u1, u2, "round trip must preserve the unitary");
    }

    // local mini-builder (aq-sim depends on this crate, not vice versa)
    fn aq_sim_free_unitary(
        m: &mut aq_dd::Manager<aq_dd::QomegaContext>,
        c: &Circuit,
    ) -> aq_dd::Edge<aq_dd::MatId> {
        let mut u = m.identity();
        for op in c.iter() {
            if let Op::Gate {
                matrix,
                target,
                controls,
            } = op
            {
                let g = m.gate(matrix, *target, controls);
                u = m.mat_mul(&g, &u);
            }
        }
        u
    }

    #[test]
    fn swap_expands_to_three_cnots() {
        let c = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nswap q[0], q[1];").expect("parse");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn walk_ops_rejected_on_export() {
        let (c, _) = crate::bwt(crate::BwtParams {
            height: 2,
            steps: 1,
            seed: 0,
        });
        let err = to_qasm(&c).expect_err("walk operators have no QASM 2 spelling");
        assert!(
            err.to_string().contains("cannot serialise walk operators"),
            "{err}"
        );
        // the offending op index points past the gate prefix
        assert!(err.op_index() < c.len());
    }

    #[test]
    fn unsupported_controlled_gates_rejected_on_export() {
        // grover(4)'s multi-controlled Z has 3 controls — not QASM 2
        let c = crate::grover(4, 5);
        let err = to_qasm(&c).expect_err("mcz has no QASM 2 spelling");
        assert!(err.to_string().contains("no QASM 2 spelling"), "{err}");
    }
}
