//! OpenQASM 2.0 (subset) import and export.
//!
//! Supports the gate vocabulary the benchmarks use — `h x y z s sdg t tdg
//! sx cx cz ccx swap rz ry rx u1 p id barrier` — over a single quantum
//! register. This is enough to round-trip every gate circuit this
//! workspace generates and to load common benchmark files.
//!
//! # Examples
//!
//! ```
//! use aq_circuits::qasm::{parse_qasm, to_qasm};
//!
//! let src = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     h q[0];
//!     cx q[0], q[1];
//! "#;
//! let c = parse_qasm(src)?;
//! assert_eq!(c.n_qubits(), 2);
//! assert_eq!(c.len(), 2);
//! let text = to_qasm(&c).expect("gate circuits always serialise");
//! assert!(text.contains("cx q[0], q[1];"));
//! # Ok::<(), aq_circuits::qasm::ParseQasmError>(())
//! ```

use std::error::Error;
use std::fmt;

use aq_dd::GateMatrix;

use crate::{Circuit, Op};

/// Error produced by [`parse_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

/// Parses an OpenQASM 2.0 subset into a [`Circuit`].
///
/// # Errors
///
/// Returns an error for unknown gates, malformed statements, missing or
/// repeated `qreg` declarations, or out-of-range qubit indices. `creg`,
/// `measure`, `barrier` and comments are accepted and ignored.
pub fn parse_qasm(src: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut reg_name = String::new();

    for (lineno, raw_line) in src.lines().enumerate() {
        let lineno = lineno + 1;
        // strip // comments
        let line = raw_line.split("//").next().unwrap_or("");
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let lower = stmt.to_ascii_lowercase();
            if lower.starts_with("openqasm") || lower.starts_with("include") {
                continue;
            }
            if let Some(rest) = lower.strip_prefix("qreg") {
                if circuit.is_some() {
                    return Err(ParseQasmError::new(lineno, "multiple qreg declarations"));
                }
                let (name, size) = parse_reg(rest.trim(), lineno)?;
                reg_name = name;
                circuit = Some(Circuit::new(size));
                continue;
            }
            if lower.starts_with("creg")
                || lower.starts_with("measure")
                || lower.starts_with("barrier")
            {
                continue;
            }
            let c = circuit
                .as_mut()
                .ok_or_else(|| ParseQasmError::new(lineno, "gate before qreg declaration"))?;
            parse_gate_stmt(c, &reg_name, stmt, lineno)?;
        }
    }
    circuit.ok_or_else(|| ParseQasmError::new(0, "no qreg declaration found"))
}

fn parse_reg(rest: &str, lineno: usize) -> Result<(String, u32), ParseQasmError> {
    // form: name[size]
    let open = rest
        .find('[')
        .ok_or_else(|| ParseQasmError::new(lineno, "malformed qreg"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| ParseQasmError::new(lineno, "malformed qreg"))?;
    let name = rest[..open].trim().to_string();
    let size: u32 = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad register size"))?;
    if size == 0 {
        return Err(ParseQasmError::new(
            lineno,
            "register size must be positive",
        ));
    }
    Ok((name, size))
}

fn parse_gate_stmt(
    c: &mut Circuit,
    reg: &str,
    stmt: &str,
    lineno: usize,
) -> Result<(), ParseQasmError> {
    // split "name(params) q[a], q[b]"
    let (head, args_str) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(i) => stmt.split_at(i),
        None => {
            return Err(ParseQasmError::new(
                lineno,
                format!("malformed statement `{stmt}`"),
            ))
        }
    };
    let (name, params) = match head.find('(') {
        Some(i) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| ParseQasmError::new(lineno, "unclosed parameter list"))?;
            (&head[..i], parse_params(&head[i + 1..close], lineno)?)
        }
        None => (head, Vec::new()),
    };
    let name = name.trim().to_ascii_lowercase();
    if name == "id" || name == "barrier" {
        return Ok(());
    }

    let qubits: Vec<u32> = args_str
        .split(',')
        .map(|a| parse_qubit(a.trim(), reg, c.n_qubits(), lineno))
        .collect::<Result<_, _>>()?;

    let one = |lineno: usize| -> Result<u32, ParseQasmError> {
        qubits
            .first()
            .copied()
            .filter(|_| qubits.len() == 1)
            .ok_or_else(|| ParseQasmError::new(lineno, format!("`{name}` takes one qubit")))
    };
    let param = |k: usize| -> Result<f64, ParseQasmError> {
        if params.len() == k + 1 {
            Ok(params[k])
        } else {
            Err(ParseQasmError::new(
                lineno,
                format!("`{name}` takes {} parameter(s)", k + 1),
            ))
        }
    };

    match name.as_str() {
        "h" => c.push_gate(GateMatrix::h(), one(lineno)?, &[]),
        "x" => c.push_gate(GateMatrix::x(), one(lineno)?, &[]),
        "y" => c.push_gate(GateMatrix::y(), one(lineno)?, &[]),
        "z" => c.push_gate(GateMatrix::z(), one(lineno)?, &[]),
        "s" => c.push_gate(GateMatrix::s(), one(lineno)?, &[]),
        "sdg" => c.push_gate(GateMatrix::sdg(), one(lineno)?, &[]),
        "t" => c.push_gate(GateMatrix::t(), one(lineno)?, &[]),
        "tdg" => c.push_gate(GateMatrix::tdg(), one(lineno)?, &[]),
        "sx" => c.push_gate(GateMatrix::sx(), one(lineno)?, &[]),
        "rz" => c.push_gate(GateMatrix::rz(param(0)?), one(lineno)?, &[]),
        "ry" => c.push_gate(GateMatrix::ry(param(0)?), one(lineno)?, &[]),
        "rx" => c.push_gate(GateMatrix::rx(param(0)?), one(lineno)?, &[]),
        "p" | "u1" => c.push_gate(GateMatrix::phase(param(0)?), one(lineno)?, &[]),
        "cx" | "cnot" => {
            let [a, b] = two(&qubits, &name, lineno)?;
            c.push_gate(GateMatrix::x(), b, &[(a, true)]);
        }
        "cz" => {
            let [a, b] = two(&qubits, &name, lineno)?;
            c.push_gate(GateMatrix::z(), b, &[(a, true)]);
        }
        "swap" => {
            let [a, b] = two(&qubits, &name, lineno)?;
            c.push_gate(GateMatrix::x(), b, &[(a, true)]);
            c.push_gate(GateMatrix::x(), a, &[(b, true)]);
            c.push_gate(GateMatrix::x(), b, &[(a, true)]);
        }
        "ccx" | "toffoli" => {
            if qubits.len() != 3 {
                return Err(ParseQasmError::new(lineno, "`ccx` takes three qubits"));
            }
            c.push_gate(
                GateMatrix::x(),
                qubits[2],
                &[(qubits[0], true), (qubits[1], true)],
            );
        }
        other => {
            return Err(ParseQasmError::new(
                lineno,
                format!("unsupported gate `{other}`"),
            ));
        }
    }
    Ok(())
}

fn two(qubits: &[u32], name: &str, lineno: usize) -> Result<[u32; 2], ParseQasmError> {
    if qubits.len() == 2 {
        Ok([qubits[0], qubits[1]])
    } else {
        Err(ParseQasmError::new(
            lineno,
            format!("`{name}` takes two qubits"),
        ))
    }
}

fn parse_qubit(arg: &str, reg: &str, n: u32, lineno: usize) -> Result<u32, ParseQasmError> {
    let open = arg
        .find('[')
        .ok_or_else(|| ParseQasmError::new(lineno, format!("malformed qubit `{arg}`")))?;
    let close = arg
        .find(']')
        .ok_or_else(|| ParseQasmError::new(lineno, format!("malformed qubit `{arg}`")))?;
    let name = arg[..open].trim();
    if !reg.is_empty() && name != reg {
        return Err(ParseQasmError::new(
            lineno,
            format!("unknown register `{name}`"),
        ));
    }
    let idx: u32 = arg[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad qubit index"))?;
    if idx >= n {
        return Err(ParseQasmError::new(
            lineno,
            format!("qubit index {idx} out of range"),
        ));
    }
    Ok(idx)
}

/// Parses a comma-separated parameter list supporting numeric literals and
/// the forms `pi`, `-pi`, `pi/k`, `-pi/k`, `k*pi/m` used by benchmark files.
fn parse_params(s: &str, lineno: usize) -> Result<Vec<f64>, ParseQasmError> {
    s.split(',')
        .map(|p| parse_angle(p.trim(), lineno))
        .collect()
}

fn parse_angle(s: &str, lineno: usize) -> Result<f64, ParseQasmError> {
    if let Ok(v) = s.parse::<f64>() {
        return Ok(v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let value = if let Some((num, den)) = body.split_once('/') {
        let num = parse_pi_product(num.trim(), lineno)?;
        let den: f64 = den
            .trim()
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, format!("bad angle `{s}`")))?;
        num / den
    } else {
        parse_pi_product(body, lineno)?
    };
    Ok(if neg { -value } else { value })
}

fn parse_pi_product(s: &str, lineno: usize) -> Result<f64, ParseQasmError> {
    if s.eq_ignore_ascii_case("pi") {
        return Ok(std::f64::consts::PI);
    }
    if let Some((k, pi)) = s.split_once('*') {
        if pi.trim().eq_ignore_ascii_case("pi") {
            let k: f64 = k
                .trim()
                .parse()
                .map_err(|_| ParseQasmError::new(lineno, format!("bad angle `{s}`")))?;
            return Ok(k * std::f64::consts::PI);
        }
    }
    s.parse::<f64>()
        .map_err(|_| ParseQasmError::new(lineno, format!("bad angle `{s}`")))
}

/// Error produced by [`to_qasm`]: the operation (by index) that has no
/// OpenQASM 2.0 spelling, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmExportError {
    op_index: usize,
    message: String,
}

impl QasmExportError {
    fn new(op_index: usize, message: impl Into<String>) -> Self {
        QasmExportError {
            op_index,
            message: message.into(),
        }
    }

    /// 0-based index of the circuit operation that cannot be serialised.
    pub fn op_index(&self) -> usize {
        self.op_index
    }
}

impl fmt::Display for QasmExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM export error at op {}: {}",
            self.op_index, self.message
        )
    }
}

impl Error for QasmExportError {}

/// Serialises a gate circuit to OpenQASM 2.0.
///
/// # Errors
///
/// Returns an error if the circuit contains quantum-walk operators
/// ([`Op::MatchingEvolution`] / [`Op::Permutation`]) or gates outside the
/// QASM 2 vocabulary (plain QASM 2 has no controlled form beyond `cx`,
/// `cz` and `ccx`).
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmExportError> {
    use std::fmt::Write as _;
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for (i, op) in circuit.iter().enumerate() {
        let Op::Gate {
            matrix,
            target,
            controls,
        } = op
        else {
            return Err(QasmExportError::new(
                i,
                "cannot serialise walk operators to QASM 2",
            ));
        };
        let name = matrix.name();
        let base = name.split('(').next().unwrap_or(name).to_ascii_lowercase();
        let param = name
            .find('(')
            .map(|i| name[i..].to_string())
            .unwrap_or_default();
        match (base.as_str(), controls.len()) {
            (_, 0) => {
                let q = format!("q[{target}]");
                let g = match base.as_str() {
                    "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" | "sx" => base.clone(),
                    "p" => format!("u1{param}"),
                    "rz" | "ry" | "rx" => format!("{base}{param}"),
                    other => {
                        return Err(QasmExportError::new(
                            i,
                            format!("gate `{other}` has no QASM 2 spelling"),
                        ));
                    }
                };
                let _ = writeln!(out, "{g} {q};");
            }
            ("x", 1) if controls[0].1 => {
                let _ = writeln!(out, "cx q[{}], q[{target}];", controls[0].0);
            }
            ("z", 1) if controls[0].1 => {
                let _ = writeln!(out, "cz q[{}], q[{target}];", controls[0].0);
            }
            ("x", 2) if controls.iter().all(|c| c.1) => {
                let _ = writeln!(
                    out,
                    "ccx q[{}], q[{}], q[{target}];",
                    controls[0].0, controls[1].0
                );
            }
            _ => {
                return Err(QasmExportError::new(
                    i,
                    format!(
                        "controlled `{base}` with {} controls has no QASM 2 spelling",
                        controls.len()
                    ),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];        // comment
            t q[1]; tdg q[2];
            cx q[0], q[1];
            ccx q[0], q[1], q[2];
            rz(pi/4) q[0];
            u1(-pi/2) q[1];
            measure q[0] -> c[0];
        "#;
        let c = parse_qasm(src).expect("parse");
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn parse_angles() {
        assert!((parse_angle("pi", 1).unwrap() - std::f64::consts::PI).abs() < 1e-15);
        assert!((parse_angle("-pi/2", 1).unwrap() + std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((parse_angle("3*pi/4", 1).unwrap() - 2.356194490192345).abs() < 1e-12);
        assert!((parse_angle("0.5", 1).unwrap() - 0.5).abs() < 1e-15);
        assert!(parse_angle("wat", 1).is_err());
    }

    #[test]
    fn errors_are_located() {
        let err = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nfoo q[0];").expect_err("bad gate");
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("unsupported gate `foo`"));

        let err = parse_qasm("OPENQASM 2.0;\nh q[0];").expect_err("no qreg");
        assert!(err.to_string().contains("gate before qreg"));

        let err = parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[4];").expect_err("range");
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        use aq_dd::QomegaContext;
        // grover(2)'s MCZ is a plain cz, so the whole circuit round-trips
        let small = crate::grover(2, 1);
        let text = to_qasm(&small).expect("grover(2) is pure gates");
        let reparsed = parse_qasm(&text).expect("reparse");
        let mut m1 = aq_dd::Manager::new(QomegaContext::new(), 2);
        let u1 = aq_sim_free_unitary(&mut m1, &small);
        let u2 = aq_sim_free_unitary(&mut m1, &reparsed);
        assert_eq!(u1, u2, "round trip must preserve the unitary");
    }

    // local mini-builder (aq-sim depends on this crate, not vice versa)
    fn aq_sim_free_unitary(
        m: &mut aq_dd::Manager<aq_dd::QomegaContext>,
        c: &Circuit,
    ) -> aq_dd::Edge<aq_dd::MatId> {
        let mut u = m.identity();
        for op in c.iter() {
            if let Op::Gate {
                matrix,
                target,
                controls,
            } = op
            {
                let g = m.gate(matrix, *target, controls);
                u = m.mat_mul(&g, &u);
            }
        }
        u
    }

    #[test]
    fn swap_expands_to_three_cnots() {
        let c = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nswap q[0], q[1];").expect("parse");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn walk_ops_rejected_on_export() {
        let (c, _) = crate::bwt(crate::BwtParams {
            height: 2,
            steps: 1,
            seed: 0,
        });
        let err = to_qasm(&c).expect_err("walk operators have no QASM 2 spelling");
        assert!(
            err.to_string().contains("cannot serialise walk operators"),
            "{err}"
        );
        // the offending op index points past the gate prefix
        assert!(err.op_index() < c.len());
    }

    #[test]
    fn unsupported_controlled_gates_rejected_on_export() {
        // grover(4)'s multi-controlled Z has 3 controls — not QASM 2
        let c = crate::grover(4, 5);
        let err = to_qasm(&c).expect_err("mcz has no QASM 2 spelling");
        assert!(err.to_string().contains("no QASM 2 spelling"), "{err}");
    }
}
