//! Ground State Estimation: quantum phase estimation over a Trotterized
//! molecular Hamiltonian (the paper's Example 5 / Fig. 2 / Fig. 5
//! benchmark, after Whitfield et al.).

use aq_dd::GateMatrix;

use crate::hamiltonian::{Hamiltonian, Pauli};
use crate::qft::{inverse_qft, push_controlled_phase};
use crate::{h2_hamiltonian, Circuit};

/// Parameters of the [`gse`] benchmark generator.
#[derive(Debug, Clone)]
pub struct GseParams {
    /// Counting-register width (phase precision bits).
    pub precision_bits: u32,
    /// First-order Trotter slices per unit power of `U`.
    pub trotter_slices: u32,
    /// Evolution time `t` in `U = exp(iHt)`.
    pub time: f64,
    /// The molecular Hamiltonian.
    pub hamiltonian: Hamiltonian,
    /// Basis state of the system register to start from (the
    /// Hartree–Fock guess; `0b10` for minimal-basis H₂ in this
    /// coefficient convention — its diagonal energy −1.830 dominates the
    /// −1.851 ground state).
    pub initial_system_state: u64,
}

impl Default for GseParams {
    fn default() -> Self {
        GseParams {
            precision_bits: 6,
            trotter_slices: 1,
            time: 1.0,
            hamiltonian: h2_hamiltonian(),
            initial_system_state: 0b10,
        }
    }
}

impl GseParams {
    /// Total qubits: counting register + system register.
    pub fn n_qubits(&self) -> u32 {
        self.precision_bits + self.hamiltonian.n_qubits
    }
}

/// Generates the GSE circuit: Hartree–Fock preparation, Hadamards on the
/// counting register, controlled `U^{2^j}` powers as repeated Trotter
/// slices, then the inverse QFT.
///
/// The circuit contains arbitrary-angle `P(φ)` gates (from `exp(iθZ…)`
/// factors and the inverse QFT), so it is **not** exactly representable —
/// the defining property of the paper's GSE benchmark. Pass it through
/// [`crate::cliffordt::CliffordTCompiler`] to obtain the Clifford+T
/// approximation that both the numeric and algebraic evaluations simulate.
///
/// # Examples
///
/// ```
/// use aq_circuits::{gse, GseParams};
///
/// let c = gse(&GseParams { precision_bits: 3, ..GseParams::default() });
/// assert_eq!(c.n_qubits(), 5);
/// assert!(!c.is_exact()); // arbitrary rotations present
/// ```
pub fn gse(params: &GseParams) -> Circuit {
    let p = params.precision_bits;
    let sys0 = p; // first system qubit
    let mut c = Circuit::new(params.n_qubits());

    // Hartree–Fock initial state on the system register.
    for q in 0..params.hamiltonian.n_qubits {
        if (params.initial_system_state >> (params.hamiltonian.n_qubits - 1 - q)) & 1 == 1 {
            c.push_gate(GateMatrix::x(), sys0 + q, &[]);
        }
    }

    // Counting register into superposition.
    for q in 0..p {
        c.push_gate(GateMatrix::h(), q, &[]);
    }

    // Controlled powers: counting qubit j controls U^{2^{p−1−j}}
    // (so qubit 0 holds the most significant phase bit).
    for j in 0..p {
        let power = 1u64 << (p - 1 - j);
        let reps = power * params.trotter_slices as u64;
        let theta = params.time / params.trotter_slices as f64;
        for _ in 0..reps {
            push_controlled_trotter_slice(&mut c, j, sys0, &params.hamiltonian, theta);
        }
    }

    // Inverse QFT on the counting register.
    let iqft = inverse_qft(p);
    for op in iqft.iter() {
        c.push(op.clone());
    }
    c
}

/// Appends one first-order Trotter slice of `exp(iHθ)` controlled by
/// `ctrl`, acting on the system register starting at `sys0`.
///
/// Each Pauli string `g·P` contributes `exp(i·g·θ·P)`:
/// * identity terms become a phase `P(gθ)` on the control,
/// * `Z…Z` terms are CNOT-reduced to a single-qubit `exp(iφZ)` whose
///   controlled version is `P(φ)` on the control plus `CP(−2φ)`,
/// * `X`/`Y` factors are basis-changed with `H` / `S·H` conjugation.
fn push_controlled_trotter_slice(
    c: &mut Circuit,
    ctrl: u32,
    sys0: u32,
    h: &Hamiltonian,
    theta: f64,
) {
    for term in &h.terms {
        let phi = term.coeff * theta;
        if term.ops.is_empty() {
            // controlled global phase = phase gate on the control
            c.push_gate(GateMatrix::phase(phi), ctrl, &[]);
            continue;
        }
        // basis change X → Z (H), Y → Z (H·S†)
        let conjugate = |c: &mut Circuit, undo: bool| {
            for &(q, p) in &term.ops {
                let t = sys0 + q;
                match (p, undo) {
                    (Pauli::X, _) => c.push_gate(GateMatrix::h(), t, &[]),
                    (Pauli::Y, false) => {
                        c.push_gate(GateMatrix::sdg(), t, &[]);
                        c.push_gate(GateMatrix::h(), t, &[]);
                    }
                    (Pauli::Y, true) => {
                        c.push_gate(GateMatrix::h(), t, &[]);
                        c.push_gate(GateMatrix::s(), t, &[]);
                    }
                    (Pauli::Z, _) => {}
                }
            }
        };
        conjugate(c, false);
        // parity fan-in onto the last involved qubit
        let qubits: Vec<u32> = term.ops.iter().map(|&(q, _)| sys0 + q).collect();
        // aq-lint: allow(R1): Hamiltonian terms are built with at least one operator
        let last = *qubits.last().expect("non-empty term");
        for w in qubits.windows(2) {
            c.push_gate(GateMatrix::x(), w[1], &[(w[0], true)]);
        }
        // controlled exp(iφZ_last) = P(φ) on ctrl + CP(−2φ) on (ctrl,last)
        c.push_gate(GateMatrix::phase(phi), ctrl, &[]);
        push_controlled_phase(c, ctrl, last, -2.0 * phi);
        for w in qubits.windows(2).rev() {
            c.push_gate(GateMatrix::x(), w[1], &[(w[0], true)]);
        }
        conjugate(c, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::{Manager, NumericContext};
    use aq_rings::Complex64;

    fn simulate(c: &Circuit) -> (Manager<NumericContext>, Vec<Complex64>) {
        let mut m = Manager::new(NumericContext::with_eps(1e-12), c.n_qubits());
        let mut s = m.basis_state(0);
        for op in c.iter() {
            if let crate::Op::Gate {
                matrix,
                target,
                controls,
            } = op
            {
                let g = m.gate(matrix, *target, controls);
                s = m.mat_vec(&g, &s);
            }
        }
        let amps = m.amplitudes(&s);
        (m, amps)
    }

    #[test]
    fn structure_and_counts() {
        let params = GseParams {
            precision_bits: 3,
            ..GseParams::default()
        };
        let c = gse(&params);
        assert_eq!(c.n_qubits(), 5);
        assert!(c.approx_ops() > 0);
        // controlled powers dominate: (2^3 − 1) slices minimum
        assert!(c.len() > 7 * 6);
    }

    #[test]
    fn phase_estimation_recovers_ground_energy() {
        // With the Hartree–Fock start |10⟩ (dominant ground-state overlap
        // for H₂), the counting register peaks at φ ≈ E·t/2π mod 1.
        let params = GseParams {
            precision_bits: 5,
            trotter_slices: 4,
            ..GseParams::default()
        };
        let c = gse(&params);
        let (m, amps) = simulate(&c);
        let _ = m;
        let p = params.precision_bits;
        // marginal distribution over the counting register
        let sys_dim = 1usize << params.hamiltonian.n_qubits;
        let mut probs = vec![0.0; 1 << p];
        for (i, a) in amps.iter().enumerate() {
            probs[i / sys_dim] += a.norm_sqr();
        }
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty")
            .0;
        // counting register j (MSB-first) encodes phase j/2^p with
        // U = exp(iHt): phase = E·t/2π mod 1
        let measured_phase = best as f64 / (1 << p) as f64;
        let e_ref = params.hamiltonian.ground_energy();
        let expected_phase = (e_ref * params.time / std::f64::consts::TAU).rem_euclid(1.0);
        let dist = (measured_phase - expected_phase).abs();
        let dist = dist.min(1.0 - dist);
        assert!(
            dist <= 2.0 / (1 << p) as f64 + 0.02,
            "phase {measured_phase} vs expected {expected_phase} (E={e_ref})"
        );
    }
}
