//! The Binary Welded Tree quantum walk (Childs et al., STOC 2003).
//!
//! Two complete binary trees of height `h` are joined (“welded”) leaf to
//! leaf by a random pair of perfect matchings, producing a graph in which
//! a classical random walk needs exponential time to travel from the
//! entrance root to the exit root while the quantum walk crosses in
//! polynomial time.
//!
//! The paper's BWT benchmark circuit is Clifford+T-exact. Two exact
//! realisations are provided (see `DESIGN.md`, substitution 3):
//!
//! * [`bwt`] — a **coined discrete quantum walk**: a 4-direction coin
//!   register driven by the Grover diffusion coin (entries ±1/2 ∈ `D[ω]`)
//!   and an arc-reversal shift permutation (entries 0/1). Amplitudes stay
//!   dyadic, so the exact decision diagram remains compact — matching the
//!   paper's observation that the algebraic BWT DD "remains quite
//!   compact".
//! * [`bwt_trotter`] — Trotterization of the continuous walk `exp(−iAt)`
//!   over a matching decomposition of the edge set with step angle π/4:
//!   each factor `exp(−i·π/4·A_M)` has entries `1/√2` and `−i/√2` on
//!   matched pairs, all in `D[ω]`.

use crate::Circuit;

/// Minimal deterministic RNG for the weld permutation (xorshift64* seeded
/// through one SplitMix64 step). In-crate so the benchmark generators
/// need no external randomness dependency; only seed-determinism matters
/// here, not statistical strength.
struct WeldRng(u64);

impl WeldRng {
    fn new(seed: u64) -> WeldRng {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        WeldRng((z ^ (z >> 31)).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Fisher–Yates shuffle (unbiased via 128-bit multiply reduction;
    /// the leaf counts here are far below any bias-visible scale).
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = ((self.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            xs.swap(i, j);
        }
    }
}

/// Parameters of the [`bwt`] / [`bwt_trotter`] benchmark generators.
#[derive(Debug, Clone, Copy)]
pub struct BwtParams {
    /// Height of each binary tree (`h ≥ 1`); the graph has
    /// `2·(2^{h+1} − 1)` vertices.
    pub height: u32,
    /// Number of walk steps (coin + shift for [`bwt`]; one factor per
    /// matching of the decomposition for [`bwt_trotter`]).
    pub steps: u32,
    /// Seed for the random weld.
    pub seed: u64,
}

impl Default for BwtParams {
    fn default() -> Self {
        BwtParams {
            height: 4,
            steps: 60,
            seed: 0xBD7,
        }
    }
}

/// The welded-tree graph: vertex labels, edges, and the entrance/exit.
///
/// Tree A uses heap labels `1..2^{h+1}` (root 1); tree B the same shifted
/// by `2^{h+1}`. Label 0 is unused.
#[derive(Debug, Clone)]
pub struct WeldedTree {
    height: u32,
    edges: Vec<(u64, u64)>,
    matchings: Vec<Vec<(u64, u64)>>,
    adjacency: std::collections::HashMap<u64, Vec<u64>>,
}

impl WeldedTree {
    /// Builds a welded tree of the given height with a seeded random weld.
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or ≥ 20.
    pub fn new(height: u32, seed: u64) -> Self {
        assert!((1..20).contains(&height), "height out of range");
        let mut rng = WeldRng::new(seed);
        let off = 1u64 << (height + 1);
        let mut edges: Vec<(u64, u64)> = Vec::new();

        // tree edges for both trees (heap structure)
        for v in 1..(1u64 << height) {
            edges.push((v, 2 * v));
            edges.push((v, 2 * v + 1));
            edges.push((off + v, off + 2 * v));
            edges.push((off + v, off + 2 * v + 1));
        }

        // weld: two disjoint perfect matchings between the leaf sets,
        // forming a single alternating cycle (the standard construction)
        let leaves_a: Vec<u64> = (1u64 << height..1u64 << (height + 1)).collect();
        let mut leaves_b: Vec<u64> = leaves_a.iter().map(|&v| off + v).collect();
        rng.shuffle(&mut leaves_b);
        // cycle a0-b0-a1-b1-…-a0: matching 1 = (ai, bi), matching 2 = (b_i, a_{i+1})
        let m = leaves_a.len();
        for i in 0..m {
            edges.push((leaves_a[i], leaves_b[i]));
            edges.push((leaves_b[i], leaves_a[(i + 1) % m]));
        }

        let matchings = greedy_matching_decomposition(&edges);
        let mut adjacency: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for &(a, b) in &edges {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        WeldedTree {
            height,
            edges,
            matchings,
            adjacency,
        }
    }

    /// The entrance root (tree A).
    pub fn entrance(&self) -> u64 {
        1
    }

    /// The exit root (tree B).
    pub fn exit(&self) -> u64 {
        (1u64 << (self.height + 1)) + 1
    }

    /// Number of qubits needed to hold a vertex label.
    pub fn n_qubits(&self) -> u32 {
        self.height + 2
    }

    /// All edges (each once, unordered).
    pub fn edges(&self) -> &[(u64, u64)] {
        &self.edges
    }

    /// The matching decomposition used for Trotterization.
    pub fn matchings(&self) -> &[Vec<(u64, u64)>] {
        &self.matchings
    }

    /// Vertex degree (for invariant checks).
    pub fn degree(&self, v: u64) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u64 {
        2 * ((1u64 << (self.height + 1)) - 1)
    }

    /// Neighbours of `v` in canonical (construction) order.
    pub fn neighbors(&self, v: u64) -> &[u64] {
        self.adjacency.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total qubits of the **coined** walk: vertex register + 2-qubit
    /// direction coin.
    pub fn coined_qubits(&self) -> u32 {
        self.n_qubits() + 2
    }

    /// Basis-state index of the coined walk's initial state: the entrance
    /// vertex with coin `0`.
    pub fn coined_start(&self) -> u64 {
        self.entrance() << 2
    }

    /// The arc-reversal shift permutation of the coined walk on basis
    /// states `(vertex << 2) | direction`: `(v, d) ↦ (u, j)` where `u` is
    /// `v`'s `d`-th neighbour and `j` points back at `v`. Padding
    /// directions (beyond the vertex degree) and non-vertex labels are
    /// fixed points, so the map is an involutive permutation.
    pub fn coined_shift(&self) -> Vec<u64> {
        let dim = 1usize << self.coined_qubits();
        let mut map: Vec<u64> = (0..dim as u64).collect();
        for (&v, nb) in &self.adjacency {
            for (d, &u) in nb.iter().enumerate() {
                let j = self
                    .neighbors(u)
                    .iter()
                    .position(|&x| x == v)
                    // aq-lint: allow(R1): the welded-tree builder inserts both edge directions
                    .expect("edges are symmetric");
                map[((v << 2) | d as u64) as usize] = (u << 2) | j as u64;
            }
        }
        map
    }

    /// Marginal probability per vertex from a coined-walk amplitude
    /// vector (summing the four coin directions).
    pub fn vertex_probabilities(&self, amplitudes: &[aq_rings::Complex64]) -> Vec<f64> {
        let nv = 1usize << self.n_qubits();
        let mut out = vec![0.0; nv];
        for (i, a) in amplitudes.iter().enumerate() {
            out[i >> 2] += a.norm_sqr();
        }
        out
    }
}

/// Partitions an edge list into matchings (greedy; ≤ Δ+1 = 4 parts for the
/// welded tree by Vizing's bound).
fn greedy_matching_decomposition(edges: &[(u64, u64)]) -> Vec<Vec<(u64, u64)>> {
    let mut matchings: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut used: Vec<std::collections::HashSet<u64>> = Vec::new();
    for &(a, b) in edges {
        let slot = (0..matchings.len()).find(|&i| !used[i].contains(&a) && !used[i].contains(&b));
        match slot {
            Some(i) => {
                matchings[i].push((a, b));
                used[i].insert(a);
                used[i].insert(b);
            }
            None => {
                matchings.push(vec![(a, b)]);
                used.push([a, b].into_iter().collect());
            }
        }
    }
    matchings
}

/// Generates the coined BWT walk circuit: `steps` repetitions of the
/// Grover coin on the 2-qubit direction register followed by the
/// arc-reversal shift permutation. All entries are in `D[ω]`
/// (coin: ±1/2 and Clifford conjugators, shift: 0/1), and the walk's
/// dyadic amplitudes keep the exact decision diagram compact.
///
/// Start the simulation from [`WeldedTree::coined_start`].
///
/// # Examples
///
/// ```
/// use aq_circuits::{bwt, BwtParams};
///
/// let (c, tree) = bwt(BwtParams { height: 3, steps: 10, seed: 7 });
/// assert_eq!(c.n_qubits(), 7); // 5 vertex qubits + 2 coin qubits
/// assert!(c.is_exact());
/// assert_eq!(tree.entrance(), 1);
/// ```
pub fn bwt(params: BwtParams) -> (Circuit, WeldedTree) {
    use aq_dd::GateMatrix;
    let tree = WeldedTree::new(params.height, params.seed);
    let n = tree.coined_qubits();
    let (c0, c1) = (n - 2, n - 1);
    let mut c = Circuit::new(n);
    // validate the shift once through the checked entry point
    let mut validator = Circuit::new(n);
    validator.push_permutation(tree.coined_shift());
    let shift = std::sync::Arc::new(tree.coined_shift());

    for _ in 0..params.steps {
        // Grover coin D = 2|s⟩⟨s| − I = −(H⊗H)·(X⊗X·CZ·X⊗X)·(H⊗H);
        // the global −1 is realised exactly as Z·X·Z·X.
        for q in [c0, c1] {
            c.push_gate(GateMatrix::h(), q, &[]);
        }
        for q in [c0, c1] {
            c.push_gate(GateMatrix::x(), q, &[]);
        }
        c.push_gate(GateMatrix::z(), c1, &[(c0, true)]);
        for q in [c0, c1] {
            c.push_gate(GateMatrix::x(), q, &[]);
        }
        for q in [c0, c1] {
            c.push_gate(GateMatrix::h(), q, &[]);
        }
        c.push_gate(GateMatrix::z(), c0, &[]);
        c.push_gate(GateMatrix::x(), c0, &[]);
        c.push_gate(GateMatrix::z(), c0, &[]);
        c.push_gate(GateMatrix::x(), c0, &[]);
        c.push(crate::Op::Permutation { map: shift.clone() });
    }
    (c, tree)
}

/// Generates the Trotterized continuous-walk circuit: `steps` slices,
/// each applying one π/4 matching-evolution factor per matching of the
/// edge decomposition.
///
/// Returns the circuit together with the welded tree. Start from
/// [`WeldedTree::entrance`]. Unlike the coined [`bwt`], the sequential
/// matching factors break the column symmetry of the ideal walk, so the
/// exact decision diagram saturates — useful as a redundancy-poor
/// counterpoint (like the paper's GSE).
pub fn bwt_trotter(params: BwtParams) -> (Circuit, WeldedTree) {
    let tree = WeldedTree::new(params.height, params.seed);
    let mut c = Circuit::new(tree.n_qubits());
    // Validate each matching once through the checked entry point, then
    // reuse one shared Arc per matching so simulators can cache the
    // operator DD by pointer identity across steps.
    let mut validator = Circuit::new(tree.n_qubits());
    let arcs: Vec<std::sync::Arc<Vec<(u64, u64)>>> = tree
        .matchings()
        .iter()
        .map(|m| {
            validator.push_matching(m.clone());
            std::sync::Arc::new(m.clone())
        })
        .collect();
    for _ in 0..params.steps {
        for a in &arcs {
            c.push(crate::Op::MatchingEvolution { pairs: a.clone() });
        }
    }
    (c, tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welded_tree_structure() {
        let t = WeldedTree::new(3, 42);
        assert_eq!(t.vertex_count(), 30);
        assert_eq!(t.n_qubits(), 5);
        // roots have degree 2, internal 3, welded leaves 3
        assert_eq!(t.degree(t.entrance()), 2);
        assert_eq!(t.degree(t.exit()), 2);
        for v in 2..8u64 {
            assert_eq!(t.degree(v), 3, "internal vertex {v}");
        }
        for v in 8..16u64 {
            assert_eq!(t.degree(v), 3, "welded leaf {v}");
        }
        // edge count: 2·(2^{h+1}−2) tree + 2·2^h weld
        assert_eq!(t.edges().len(), 2 * (16 - 2) + 2 * 8);
    }

    #[test]
    fn matchings_partition_edges_disjointly() {
        let t = WeldedTree::new(4, 1);
        let total: usize = t.matchings().iter().map(Vec::len).sum();
        assert_eq!(total, t.edges().len());
        assert!(t.matchings().len() <= 5, "got {}", t.matchings().len());
        for m in t.matchings() {
            let mut seen = std::collections::HashSet::new();
            for &(a, b) in m {
                assert!(seen.insert(a), "vertex {a} repeated");
                assert!(seen.insert(b), "vertex {b} repeated");
            }
        }
    }

    #[test]
    fn weld_is_two_regular_on_leaves() {
        let t = WeldedTree::new(4, 9);
        let off = 1u64 << 5;
        for leaf in 16..32u64 {
            let welds = t
                .edges()
                .iter()
                .filter(|&&(a, b)| (a == leaf && b >= off) || (b == leaf && a >= off))
                .count();
            assert_eq!(welds, 2, "leaf {leaf}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = WeldedTree::new(3, 5);
        let b = WeldedTree::new(3, 5);
        assert_eq!(a.edges(), b.edges());
        let c = WeldedTree::new(3, 6);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn trotter_circuit_has_matchings_times_steps_ops() {
        let (c, t) = bwt_trotter(BwtParams {
            height: 3,
            steps: 7,
            seed: 0,
        });
        assert_eq!(c.len(), 7 * t.matchings().len());
        assert!(c.is_exact());
    }

    #[test]
    fn coined_circuit_structure() {
        let (c, t) = bwt(BwtParams {
            height: 3,
            steps: 4,
            seed: 0,
        });
        assert_eq!(c.n_qubits(), t.coined_qubits());
        // 13 coin gates + 1 shift per step
        assert_eq!(c.len(), 4 * 14);
        assert!(c.is_exact());
    }

    #[test]
    fn coined_shift_is_an_involutive_permutation() {
        let t = WeldedTree::new(3, 5);
        let shift = t.coined_shift();
        let dim = 1usize << t.coined_qubits();
        assert_eq!(shift.len(), dim);
        let mut seen = vec![false; dim];
        for (x, &y) in shift.iter().enumerate() {
            assert!(!std::mem::replace(&mut seen[y as usize], true));
            assert_eq!(shift[y as usize], x as u64, "shift must be an involution");
        }
        // every real arc moves; padding stays fixed
        for v in 1..=7u64 {
            let deg = t.degree(v);
            for d in 0..4u64 {
                let idx = ((v << 2) | d) as usize;
                if (d as usize) < deg {
                    assert_ne!(shift[idx], idx as u64, "arc ({v},{d}) must move");
                } else {
                    assert_eq!(shift[idx], idx as u64, "padding ({v},{d}) must stay");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = WeldedTree::new(4, 9);
        for &(a, b) in t.edges() {
            assert!(t.neighbors(a).contains(&b));
            assert!(t.neighbors(b).contains(&a));
        }
        assert_eq!(t.neighbors(t.entrance()).len(), 2);
    }
}
