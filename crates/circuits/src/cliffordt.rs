//! Clifford+T approximation of arbitrary single-qubit gates — the
//! substitute for the paper's use of Quipper (see `DESIGN.md`,
//! substitution 2).
//!
//! Every unitary realisable *exactly* over `D[ω]` is a Clifford+T circuit
//! (Giles & Selinger); everything else must be approximated. We enumerate
//! single-qubit Clifford+T unitaries in **Matsumoto–Amano normal form**
//!
//! ```text
//!   (T | ε) · (H·T | S·H·T)^k · C,     C ∈ Clifford (24 elements)
//! ```
//!
//! which is unique per unitary (up to phase), so plain enumeration visits
//! each group element once — no deduplication needed. For a requested
//! gate the database is scanned for the entry minimising the phase-
//! invariant distance `d(U,V) = √(1 − |tr(U†V)|/2)`.
//!
//! A single lookup reaches the database's covering radius (≈ 5e−2 at
//! syllable budget 8); the default **two-stage meet-in-the-middle**
//! search composes a short left word with the nearest entry to its
//! residual via a quaternion spatial index, reaching ≈ 1e−2–2e−2 at the
//! same budget. Still coarser than the Ross–Selinger grid synthesis
//! Quipper uses, but with identical *structure*: the emitted sequences
//! are real H/S/T words whose `D[ω]` entries carry growing denominator
//! exponents, which is exactly the property that drives the paper's
//! Fig. 5.

use std::collections::HashMap;

use aq_dd::{GateMatrix, Manager, NumericContext};
use aq_rings::Complex64;

use crate::{Circuit, Op};

/// A letter of an emitted Clifford+T word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtGate {
    /// Hadamard.
    H,
    /// Phase gate `S`.
    S,
    /// `T` (π/4) gate.
    T,
}

impl CtGate {
    /// The 2×2 gate matrix.
    pub fn matrix(self) -> GateMatrix {
        match self {
            CtGate::H => GateMatrix::h(),
            CtGate::S => GateMatrix::s(),
            CtGate::T => GateMatrix::t(),
        }
    }

    fn complex(self) -> [Complex64; 4] {
        self.matrix().to_complex()
    }
}

/// One database entry: the unitary plus the (compact) word encoding.
#[derive(Debug, Clone)]
struct DbEntry {
    u: [Complex64; 4],
    leading_t: bool,
    /// Syllable string: bit 0 first; `0` = `H·T`, `1` = `S·H·T`.
    syllables: u32,
    n_syllables: u8,
    clifford: u8,
}

/// The Clifford+T gate synthesiser.
///
/// # Examples
///
/// ```
/// use aq_circuits::cliffordt::CliffordTCompiler;
///
/// let mut comp = CliffordTCompiler::new(10);
/// let (word, err) = comp.approximate_phase(0.3);
/// assert!(!word.is_empty());
/// assert!(err < 0.2, "distance {err}");
/// ```
pub struct CliffordTCompiler {
    max_syllables: u8,
    db: Vec<DbEntry>,
    cliffords: Vec<Vec<CtGate>>,
    cache: HashMap<u64, (Vec<CtGate>, f64)>,
    /// Quantized-quaternion buckets over the database for fast nearest
    /// lookups (meet-in-the-middle synthesis).
    spatial: HashMap<(i32, i32, i32), Vec<u32>>,
    /// Indices of short entries used as the left factor in
    /// meet-in-the-middle search.
    short_entries: Vec<u32>,
    /// Bucket pitch of the spatial index (scaled to the database's
    /// covering radius so a 3×3×3 probe finds the nearest entry).
    pitch: f64,
    /// Enable the two-word meet-in-the-middle search (default on).
    two_stage: bool,
}

impl std::fmt::Debug for CliffordTCompiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CliffordTCompiler(max_syllables={}, db={} entries)",
            self.max_syllables,
            self.db.len()
        )
    }
}

fn mat_mul(a: &[Complex64; 4], b: &[Complex64; 4]) -> [Complex64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

fn word_matrix(word: &[CtGate]) -> [Complex64; 4] {
    let mut u = [
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::ONE,
    ];
    for g in word {
        u = mat_mul(&g.complex(), &u);
    }
    u
}

/// Phase-invariant distance `√(1 − |tr(U†V)|/2)`.
fn distance(u: &[Complex64; 4], v: &[Complex64; 4]) -> f64 {
    let tr = u[0].conj() * v[0] + u[1].conj() * v[1] + u[2].conj() * v[2] + u[3].conj() * v[3];
    (1.0 - (tr.abs() / 2.0).min(1.0)).max(0.0).sqrt()
}

/// Enumerates the 24 single-qubit Cliffords (up to phase) as shortest
/// H/S words, via breadth-first closure.
fn enumerate_cliffords() -> Vec<Vec<CtGate>> {
    let canon = |u: &[Complex64; 4]| -> [(i64, i64); 4] {
        // normalise the global phase: make the first entry of largest
        // magnitude real positive, then round (entries are algebraic of
        // bounded height, so rounding to 6 decimals is collision-free).
        let pivot = (0..4)
            .max_by(|&a, &b| u[a].norm_sqr().total_cmp(&u[b].norm_sqr()))
            // aq-lint: allow(R1): max_by over the non-empty literal range 0..4
            .expect("four entries");
        let phase = u[pivot] * (1.0 / u[pivot].abs());
        let inv = phase.conj();
        let mut out = [(0i64, 0i64); 4];
        for (i, x) in u.iter().enumerate() {
            let y = *x * inv;
            out[i] = ((y.re * 1e6).round() as i64, (y.im * 1e6).round() as i64);
        }
        out
    };
    let mut seen: HashMap<[(i64, i64); 4], Vec<CtGate>> = HashMap::new();
    let id = [
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::ONE,
    ];
    seen.insert(canon(&id), Vec::new());
    let mut frontier = vec![(id, Vec::new())];
    while let Some((u, word)) = frontier.pop() {
        for g in [CtGate::H, CtGate::S] {
            let nu = mat_mul(&g.complex(), &u);
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(canon(&nu)) {
                let mut w = word.clone();
                w.push(g);
                e.insert(w.clone());
                frontier.push((nu, w));
            }
        }
    }
    let mut v: Vec<Vec<CtGate>> = seen.into_values().collect();
    v.sort_by_key(|w| {
        (
            w.len(),
            w.clone().iter().map(|g| *g as u8).collect::<Vec<_>>(),
        )
    });
    assert_eq!(v.len(), 24, "single-qubit Clifford group has 24 elements");
    v
}

/// Phase-stripped unit quaternion (w, x, y, z) of a 2×2 unitary, with the
/// canonical sign `w ≥ 0`. Two unitaries equal up to global phase map to
/// the same quaternion (up to the w ≈ 0 sign ambiguity handled by the
/// probe).
fn quaternion(u: &[Complex64; 4]) -> [f64; 4] {
    // det = u00·u11 − u01·u10, a unit-magnitude complex; divide by √det.
    let det = u[0] * u[3] - u[1] * u[2];
    let half = det.im.atan2(det.re) / 2.0;
    let inv_sqrt_det = Complex64::from_polar_unit(-half);
    let v00 = u[0] * inv_sqrt_det;
    let v01 = u[1] * inv_sqrt_det;
    // V = [[w+iz, y+ix], [−y+ix, w−iz]]
    let (w, z, y, x) = (v00.re, v00.im, v01.re, v01.im);
    if w < 0.0 {
        [-w, -x, -y, -z]
    } else {
        [w, x, y, z]
    }
}

/// Conjugate transpose of a 2×2 matrix.
fn dagger(u: &[Complex64; 4]) -> [Complex64; 4] {
    [u[0].conj(), u[2].conj(), u[1].conj(), u[3].conj()]
}

fn spatial_cell(q: &[f64; 4], pitch: f64) -> (i32, i32, i32) {
    (
        (q[1] / pitch).floor() as i32,
        (q[2] / pitch).floor() as i32,
        (q[3] / pitch).floor() as i32,
    )
}

impl CliffordTCompiler {
    /// Builds the database with the given syllable budget (`≤ 24`;
    /// 10–14 is a practical range: `2^{k+1}·24` entries).
    ///
    /// # Panics
    ///
    /// Panics if `max_syllables > 24`.
    pub fn new(max_syllables: u8) -> Self {
        assert!(max_syllables <= 24, "syllable budget too large");
        let cliffords = enumerate_cliffords();
        let cliff_mats: Vec<[Complex64; 4]> = cliffords.iter().map(|w| word_matrix(w)).collect();
        let ht = word_matrix(&[CtGate::T, CtGate::H]); // H·T as matrix product H·T applied right-to-left…
        let _ = ht;

        // syllable matrices (applied as left-multiplications)
        let h = CtGate::H.complex();
        let s = CtGate::S.complex();
        let t = CtGate::T.complex();
        let syl0 = mat_mul(&h, &t); // H·T
        let syl1 = mat_mul(&s, &syl0); // S·H·T

        let mut db = Vec::new();
        // cores(k): all products of k syllables, built incrementally.
        let mut cores: Vec<([Complex64; 4], u32)> = vec![(
            [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
            ],
            0,
        )];
        for k in 0..=max_syllables {
            for &(core, bits) in &cores {
                for leading_t in [false, true] {
                    let m = if leading_t { mat_mul(&t, &core) } else { core };
                    for (ci, cm) in cliff_mats.iter().enumerate() {
                        db.push(DbEntry {
                            u: mat_mul(&m, cm),
                            leading_t,
                            syllables: bits,
                            n_syllables: k,
                            clifford: ci as u8,
                        });
                    }
                }
            }
            if k < max_syllables {
                let mut next = Vec::with_capacity(cores.len() * 2);
                for &(core, bits) in &cores {
                    next.push((mat_mul(&core, &syl0), bits));
                    next.push((mat_mul(&core, &syl1), bits | (1 << k)));
                }
                cores = next;
            }
        }
        // covering radius ≈ (volume of the quaternion half-sphere surface
        // / points)^{1/3}; the probe spans 3 cells per axis, so one cell of
        // that size suffices.
        let pitch = (9.87 / db.len() as f64).cbrt().clamp(0.01, 0.2);
        let mut spatial: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        let mut short_entries = Vec::new();
        for (i, e) in db.iter().enumerate() {
            let q = quaternion(&e.u);
            spatial
                .entry(spatial_cell(&q, pitch))
                .or_default()
                .push(i as u32);
            if e.n_syllables <= max_syllables.min(6) {
                short_entries.push(i as u32);
            }
        }
        CliffordTCompiler {
            max_syllables,
            db,
            cliffords,
            cache: HashMap::new(),
            spatial,
            short_entries,
            pitch,
            two_stage: true,
        }
    }

    /// Disables the two-word meet-in-the-middle search (single database
    /// lookups only) — mainly for the precision ablation.
    pub fn without_two_stage(mut self) -> Self {
        self.two_stage = false;
        self
    }

    /// Nearest database entry to `target` within the probed
    /// neighbourhood of the quaternion buckets, or `None` if the
    /// neighbourhood is empty (the meet-in-the-middle caller just skips
    /// that left factor).
    fn nearest(&self, target: &[Complex64; 4]) -> Option<(usize, f64)> {
        let q = quaternion(target);
        let mut best = (usize::MAX, f64::INFINITY);
        for sign in [1.0f64, -1.0] {
            let qq = [q[0] * sign, q[1] * sign, q[2] * sign, q[3] * sign];
            let (cx, cy, cz) = spatial_cell(&qq, self.pitch);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    for dz in -1..=1 {
                        if let Some(ids) = self.spatial.get(&(cx + dx, cy + dy, cz + dz)) {
                            for &i in ids {
                                let d = distance(&self.db[i as usize].u, target);
                                if d < best.1 {
                                    best = (i as usize, d);
                                }
                            }
                        }
                    }
                }
            }
        }
        (best.0 != usize::MAX).then_some(best)
    }

    /// Number of database entries.
    pub fn db_len(&self) -> usize {
        self.db.len()
    }

    fn entry_word(&self, e: &DbEntry) -> Vec<CtGate> {
        // entries are products  M = (T?)·syl_{b0}·syl_{b1}·…·C  — as a
        // gate sequence (first gate = rightmost factor) this is C first,
        // then the syllables in *reverse* bit order, then the leading T.
        // Each syllable `H·T` as a matrix means "T then H" as gates.
        let mut word = self.cliffords[e.clifford as usize].clone();
        for i in (0..e.n_syllables).rev() {
            word.push(CtGate::T);
            word.push(CtGate::H);
            if (e.syllables >> i) & 1 == 1 {
                word.push(CtGate::S);
            }
        }
        if e.leading_t {
            word.push(CtGate::T);
        }
        word
    }

    /// Best Clifford+T word for an arbitrary 2×2 unitary (up to global
    /// phase), with the achieved distance.
    ///
    /// A single database lookup reaches the covering radius of the
    /// enumerated normal forms (≈ 0.05 at budget 8). The two-stage
    /// meet-in-the-middle search composes a short left word `A` with the
    /// nearest entry to `A†·target`, multiplying the effective database
    /// size and typically reaching ≈ 1e−3 — closer to the grid-synthesis
    /// quality the paper obtains from Quipper.
    pub fn approximate_unitary(&self, target: &[Complex64; 4]) -> (Vec<CtGate>, f64) {
        // exhaustive single-entry baseline (cheap enough and exact)
        let mut best_single = (0usize, f64::INFINITY);
        for (i, e) in self.db.iter().enumerate() {
            let d = distance(&e.u, target);
            if d < best_single.1 {
                best_single = (i, d);
            }
        }
        let mut best_word = self.entry_word(&self.db[best_single.0]);
        let mut best_d = best_single.1;

        if self.two_stage && best_d > 1e-9 {
            for &ai in &self.short_entries {
                let a = &self.db[ai as usize];
                let residual = mat_mul(&dagger(&a.u), target);
                let Some((bi, _)) = self.nearest(&residual) else {
                    continue;
                };
                let composed = mat_mul(&a.u, &self.db[bi].u);
                let d = distance(&composed, target);
                if d < best_d {
                    best_d = d;
                    // U = A·B: apply B first, then A
                    let mut w = self.entry_word(&self.db[bi]);
                    w.extend(self.entry_word(a));
                    best_word = w;
                }
            }
        }
        (best_word, best_d)
    }

    /// Best Clifford+T word for the phase gate `P(θ) = diag(1, e^{iθ})`,
    /// memoised per angle.
    pub fn approximate_phase(&mut self, theta: f64) -> (Vec<CtGate>, f64) {
        let key = theta.to_bits();
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let target = [
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::from_polar_unit(theta),
        ];
        let res = self.approximate_unitary(&target);
        self.cache.insert(key, res.clone());
        res
    }

    /// Compiles a circuit to Clifford+T: exact operations pass through
    /// unchanged; every approximate *uncontrolled* single-qubit gate is
    /// replaced by its best word. Returns the compiled circuit and the
    /// worst per-gate approximation distance.
    ///
    /// # Panics
    ///
    /// Panics if an approximate gate has controls (decompose controlled
    /// rotations into single-qubit phases and CNOTs first — the GSE
    /// generator already does).
    pub fn compile(&mut self, circuit: &Circuit) -> (Circuit, f64) {
        let mut out = Circuit::new(circuit.n_qubits());
        let mut worst: f64 = 0.0;
        for op in circuit.iter() {
            match op {
                Op::Gate {
                    matrix,
                    target,
                    controls,
                } if !matrix.is_exact() => {
                    assert!(
                        controls.is_empty(),
                        "cannot Clifford+T-compile a controlled approximate gate"
                    );
                    let (word, err) = {
                        let t = matrix.to_complex();
                        // phase gates hit the memo cache
                        if t[1] == Complex64::ZERO
                            && t[2] == Complex64::ZERO
                            && t[0] == Complex64::ONE
                        {
                            self.approximate_phase(t[3].im.atan2(t[3].re))
                        } else {
                            self.approximate_unitary(&t)
                        }
                    };
                    worst = worst.max(err);
                    for g in word {
                        out.push_gate(g.matrix(), *target, &[]);
                    }
                }
                other => out.push(other.clone()),
            }
        }
        (out, worst)
    }
}

/// Verifies a compiled word against its target by DD simulation — a
/// self-check utility used in tests and examples.
pub fn word_distance(word: &[CtGate], target: &[Complex64; 4]) -> f64 {
    let mut m = Manager::new(NumericContext::with_eps(1e-13), 1);
    let mut u = m.identity();
    for g in word {
        let gd = m.gate(&g.matrix(), 0, &[]);
        u = m.mat_mul(&gd, &u);
    }
    let mat = m.matrix(&u);
    distance(&[mat[0][0], mat[0][1], mat[1][0], mat[1][1]], target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_enumeration_is_24() {
        assert_eq!(enumerate_cliffords().len(), 24);
    }

    #[test]
    fn exact_angles_found_exactly() {
        let mut c = CliffordTCompiler::new(3);
        // P(π/4) = T is in the database: distance ~ 0
        let (word, err) = c.approximate_phase(std::f64::consts::FRAC_PI_4);
        assert!(err < 1e-9, "T should be found exactly, err={err}");
        assert!(word.len() <= 2);
        let (_, err_s) = c.approximate_phase(std::f64::consts::FRAC_PI_2);
        assert!(err_s < 1e-9, "S should be found exactly");
    }

    #[test]
    fn precision_improves_with_budget() {
        let theta = 0.37;
        let mut small = CliffordTCompiler::new(4);
        let mut large = CliffordTCompiler::new(10);
        let (_, e_small) = small.approximate_phase(theta);
        let (_, e_large) = large.approximate_phase(theta);
        assert!(e_large <= e_small, "{e_large} vs {e_small}");
        assert!(e_large < 0.12, "budget 10 should reach ~0.1: {e_large}");
    }

    #[test]
    fn emitted_word_reproduces_database_distance() {
        let mut c = CliffordTCompiler::new(8);
        for theta in [0.3f64, 1.1, -0.7, 2.9] {
            let (word, err) = c.approximate_phase(theta);
            let target = [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::from_polar_unit(theta),
            ];
            let d = word_distance(&word, &target);
            assert!(
                (d - err).abs() < 1e-6,
                "word/database mismatch for θ={theta}: {d} vs {err}"
            );
        }
    }

    #[test]
    fn compile_replaces_only_approx_gates() {
        let mut circ = Circuit::new(2);
        circ.push_gate(GateMatrix::h(), 0, &[]);
        circ.push_gate(GateMatrix::phase(0.3), 1, &[]);
        circ.push_gate(GateMatrix::x(), 1, &[(0, true)]);
        let mut comp = CliffordTCompiler::new(8);
        let (compiled, worst) = comp.compile(&circ);
        assert!(compiled.is_exact());
        assert!(compiled.len() > circ.len());
        assert!(worst > 0.0 && worst < 0.3);
    }

    #[test]
    #[should_panic(expected = "controlled approximate gate")]
    fn compile_rejects_controlled_rotations() {
        let mut circ = Circuit::new(2);
        circ.push_gate(GateMatrix::rz(0.5), 1, &[(0, true)]);
        let mut comp = CliffordTCompiler::new(3);
        let _ = comp.compile(&circ);
    }

    #[test]
    fn db_size_matches_formula() {
        let c = CliffordTCompiler::new(5);
        // Σ_{k=0..5} 2^k cores × 2 (leading T) × 24 cliffords
        let cores: usize = (0..=5).map(|k| 1usize << k).sum();
        assert_eq!(c.db_len(), cores * 2 * 24);
    }
}
