//! Property tests for the Clifford+T synthesiser: every emitted word must
//! reproduce its claimed distance, and precision must hold across the
//! angle range.

use aq_circuits::cliffordt::{word_distance, CliffordTCompiler};
use aq_rings::Complex64;
use aq_testutil::proptest::prelude::*;

fn target_phase(theta: f64) -> [Complex64; 4] {
    [
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::from_polar_unit(theta),
    ]
}

fn random_unitary(a: f64, b: f64, c: f64) -> [Complex64; 4] {
    // U = Rz(a)·Ry(b)·Rz(c) — covers SU(2)
    let (sb, cb) = (b / 2.0).sin_cos();
    let e = Complex64::from_polar_unit;
    [
        e(-(a + c) / 2.0) * cb,
        e(-(a - c) / 2.0) * (-sb),
        e((a - c) / 2.0) * sb,
        e((a + c) / 2.0) * cb,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn phase_words_verify_by_simulation(theta in -3.1f64..3.1) {
        let mut comp = CliffordTCompiler::new(7);
        let (word, err) = comp.approximate_phase(theta);
        prop_assert!(err < 0.12, "budget 7 must reach ~0.1: {err} at θ={theta}");
        let d = word_distance(&word, &target_phase(theta));
        prop_assert!((d - err).abs() < 1e-6, "claimed {err}, simulated {d}");
    }

    #[test]
    fn arbitrary_unitaries_approximate(a in -3.0f64..3.0, b in 0.0f64..3.0, c in -3.0f64..3.0) {
        let comp = CliffordTCompiler::new(7);
        let target = random_unitary(a, b, c);
        let (word, err) = comp.approximate_unitary(&target);
        prop_assert!(err < 0.15, "distance {err}");
        let d = word_distance(&word, &target);
        prop_assert!((d - err).abs() < 1e-6);
    }

    #[test]
    fn two_stage_never_worse_than_single(theta in -3.0f64..3.0) {
        let two = CliffordTCompiler::new(6);
        let one = CliffordTCompiler::new(6).without_two_stage();
        let t = target_phase(theta);
        let (_, d2) = two.approximate_unitary(&t);
        let (_, d1) = one.approximate_unitary(&t);
        prop_assert!(d2 <= d1 + 1e-12, "two-stage {d2} vs single {d1}");
    }
}
