//! Simulator checkpoints: a manager snapshot plus enough run context
//! (circuit identity, cursor, partial trace) to continue an aborted
//! simulation in a later process.
//!
//! A checkpoint file reuses the framed, section-checksummed container of
//! [`aq_dd::snapshot`] with its own magic number:
//!
//! ```text
//! "AQSIMCKP" | version | INFO | TRACE | MANAGER | END
//! ```
//!
//! * `INFO` — free-form label, qubit count, circuit length, a fingerprint
//!   of the circuit's operations, the cursor (gates applied) and the
//!   accumulated DD-operation seconds.
//! * `TRACE` — the partial [`Trace`] recorded before the abort (points
//!   and abort reason; engine counters are *not* persisted — they are
//!   recomputed from the reloaded manager).
//! * `MANAGER` — an embedded [`Manager`](aq_dd::Manager) snapshot with
//!   the simulator state as its single vector root. The manager is saved
//!   **uncompacted**: the weight table's ε-merge decisions are
//!   path-dependent, so only the full table guarantees a resumed run is
//!   bit-identical to an uninterrupted one.
//!
//! The run's [`RunBudget`](aq_dd::RunBudget) is deliberately not stored:
//! a checkpoint usually exists *because* the budget fired, and the
//! resuming process installs its own (typically larger) budget.

use std::path::Path;

use aq_circuits::Circuit;
use aq_dd::snapshot::{ByteReader, ByteWriter, SnapshotReader, SnapshotWriter};
use aq_dd::EngineError;

use crate::trace::{Trace, TracePoint};

/// The checkpoint magic number.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"AQSIMCKP";
/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

const SEC_INFO: u32 = 1;
const SEC_TRACE: u32 = 2;
const SEC_MANAGER: u32 = 3;

/// The run context stored in a checkpoint, readable without knowing the
/// weight context (see [`peek_checkpoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointInfo {
    /// Free-form label identifying the run (a sweep stage, a benchmark
    /// workload). Resume helpers match on it before paying for a load.
    pub label: String,
    /// Qubit count of the checkpointed circuit.
    pub n_qubits: u32,
    /// Operation count of the checkpointed circuit.
    pub circuit_len: u64,
    /// Fingerprint of the circuit's operations ([`circuit_fingerprint`]).
    pub circuit_fingerprint: u64,
    /// Operations applied when the checkpoint was taken.
    pub gates_applied: u64,
    /// Accumulated DD-operation seconds at the checkpoint.
    pub elapsed_seconds: f64,
}

/// A fingerprint of a circuit's structure (qubit count plus every
/// operation), used to refuse resuming a checkpoint against a different
/// circuit. Operations don't implement `Hash`; their `Debug` rendering is
/// stable and covers every parameter, so the fingerprint hashes that.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let rendered = format!(
        "{}+{}:{:?}",
        circuit.n_qubits(),
        circuit.n_cbits(),
        circuit.ops()
    );
    aq_dd::fxhash::fx_hash(&rendered)
}

fn corrupt(section: &str, detail: impl Into<String>) -> EngineError {
    EngineError::SnapshotCorrupt {
        section: format!("checkpoint {section}"),
        detail: detail.into(),
    }
}

fn encode_info(info: &CheckpointInfo) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&info.label);
    w.put_u32(info.n_qubits);
    w.put_u64(info.circuit_len);
    w.put_u64(info.circuit_fingerprint);
    w.put_u64(info.gates_applied);
    w.put_f64(info.elapsed_seconds);
    w.into_bytes()
}

fn decode_info(payload: &[u8]) -> Result<CheckpointInfo, EngineError> {
    let mut r = ByteReader::new(payload);
    (|| -> Result<CheckpointInfo, String> {
        let info = CheckpointInfo {
            label: r.take_str()?,
            n_qubits: r.take_u32()?,
            circuit_len: r.take_u64()?,
            circuit_fingerprint: r.take_u64()?,
            gates_applied: r.take_u64()?,
            elapsed_seconds: r.take_f64()?,
        };
        r.expect_end()?;
        Ok(info)
    })()
    .map_err(|e| corrupt("info", e))
}

fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(trace.points.len() as u64);
    for p in &trace.points {
        w.put_u64(p.gates_applied as u64);
        w.put_u64(p.nodes as u64);
        w.put_f64(p.seconds);
        w.put_u64(p.max_weight_bits);
        match p.error {
            Some(e) => {
                w.put_u8(1);
                w.put_f64(e);
            }
            None => w.put_u8(0),
        }
    }
    match &trace.aborted {
        Some(reason) => {
            w.put_u8(1);
            w.put_str(reason);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

fn checked_usize(n: u64) -> Result<usize, String> {
    usize::try_from(n).map_err(|_| format!("count {n} does not fit in usize on this host"))
}

fn decode_trace(payload: &[u8]) -> Result<Trace, EngineError> {
    let mut r = ByteReader::new(payload);
    (|| -> Result<Trace, String> {
        let count = r.take_u64()?;
        if count > payload.len() as u64 / 8 {
            return Err(format!("point count {count} exceeds payload"));
        }
        let mut trace = Trace::default();
        for _ in 0..count {
            let gates_applied = r.take_u64().and_then(checked_usize)?;
            let nodes = r.take_u64().and_then(checked_usize)?;
            let seconds = r.take_f64()?;
            let max_weight_bits = r.take_u64()?;
            let error = match r.take_u8()? {
                0 => None,
                1 => Some(r.take_f64()?),
                other => return Err(format!("bad error flag {other}")),
            };
            trace.points.push(TracePoint {
                gates_applied,
                nodes,
                seconds,
                max_weight_bits,
                error,
            });
        }
        trace.aborted = match r.take_u8()? {
            0 => None,
            1 => Some(r.take_str()?),
            other => return Err(format!("bad aborted flag {other}")),
        };
        r.expect_end()?;
        Ok(trace)
    })()
    .map_err(|e| corrupt("trace", e))
}

pub(crate) fn encode_checkpoint(
    info: &CheckpointInfo,
    trace: &Trace,
    manager_bytes: &[u8],
) -> Vec<u8> {
    let mut s = SnapshotWriter::new(CHECKPOINT_MAGIC, CHECKPOINT_VERSION);
    s.section(SEC_INFO, &encode_info(info));
    s.section(SEC_TRACE, &encode_trace(trace));
    s.section(SEC_MANAGER, manager_bytes);
    s.finish()
}

pub(crate) fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(CheckpointInfo, Trace, Vec<u8>), EngineError> {
    let mut reader = SnapshotReader::new(bytes, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
    let mut info = None;
    let mut trace = None;
    let mut manager = None;
    while let Some((tag, payload)) = reader.next_section()? {
        match tag {
            SEC_INFO => info = Some(decode_info(payload)?),
            SEC_TRACE => trace = Some(decode_trace(payload)?),
            SEC_MANAGER => manager = Some(payload.to_vec()),
            _ => {} // unknown checksummed sections are skippable
        }
    }
    Ok((
        info.ok_or_else(|| corrupt("info", "section missing"))?,
        trace.ok_or_else(|| corrupt("trace", "section missing"))?,
        manager.ok_or_else(|| corrupt("manager", "section missing"))?,
    ))
}

/// Reads only the [`CheckpointInfo`] of a checkpoint file — cheap, and
/// independent of the weight context, so harnesses can decide whether a
/// checkpoint belongs to a given run before loading it.
///
/// # Errors
///
/// [`EngineError::SnapshotIo`] when the file cannot be read, plus the
/// corruption/version errors of the container format.
pub fn peek_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointInfo, EngineError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| EngineError::SnapshotIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    let (info, _, _) = decode_checkpoint(&bytes)?;
    Ok(info)
}

/// Checks a checkpoint's stored circuit identity against the circuit a
/// resume was asked to continue.
pub(crate) fn check_circuit_identity(
    info: &CheckpointInfo,
    circuit: &Circuit,
) -> Result<(), EngineError> {
    let expected = (
        circuit.n_qubits(),
        circuit.len() as u64,
        circuit_fingerprint(circuit),
    );
    let found = (info.n_qubits, info.circuit_len, info.circuit_fingerprint);
    if expected != found {
        return Err(EngineError::SnapshotMismatch {
            expected: format!(
                "circuit with {} qubit(s), {} op(s), fingerprint {:#018x}",
                expected.0, expected.1, expected.2
            ),
            found: format!(
                "checkpoint `{}` for {} qubit(s), {} op(s), fingerprint {:#018x}",
                info.label, found.0, found.1, found.2
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips() {
        let mut t = Trace::default();
        t.points.push(TracePoint {
            gates_applied: 3,
            nodes: 17,
            seconds: 0.25,
            max_weight_bits: 12,
            error: Some(1e-9),
        });
        t.points.push(TracePoint {
            gates_applied: 4,
            nodes: 19,
            seconds: 0.5,
            max_weight_bits: 13,
            error: None,
        });
        t.aborted = Some("node budget exceeded".into());
        let decoded = decode_trace(&encode_trace(&t)).expect("round-trip");
        assert_eq!(decoded.points, t.points);
        assert_eq!(decoded.aborted, t.aborted);
    }

    #[test]
    fn info_roundtrips() {
        let info = CheckpointInfo {
            label: "fig3/eps1e-10".into(),
            n_qubits: 7,
            circuit_len: 421,
            circuit_fingerprint: 0xDEAD_BEEF_F00D,
            gates_applied: 99,
            elapsed_seconds: 1.5,
        };
        let got = decode_info(&encode_info(&info)).expect("round-trip");
        assert_eq!(got, info);
    }

    #[test]
    fn fingerprint_distinguishes_circuits() {
        let a = aq_circuits::grover(3, 2);
        let b = aq_circuits::grover(3, 3);
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));
        assert_eq!(circuit_fingerprint(&a), circuit_fingerprint(&a));
    }
}
