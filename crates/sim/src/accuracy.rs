//! Accuracy measurement: numeric simulation against the exact algebraic
//! reference (footnote 8 of the paper).

use aq_circuits::Circuit;
use aq_dd::{QomegaContext, WeightContext};
use aq_rings::Complex64;

use crate::simulator::{SimOptions, Simulator};
use crate::trace::Trace;

/// The paper's accuracy metric: Euclidean norm of `v_num/‖v_num‖ − v_alg`.
///
/// The numeric vector is renormalised first (“an error in the length of
/// the vector can be fixed easily”); a numeric zero vector — the
/// catastrophic outcome of too large an ε — yields the distance to the
/// exact unit vector, `1`.
pub fn normalized_distance(v_num: &[Complex64], v_alg: &[Complex64]) -> f64 {
    assert_eq!(v_num.len(), v_alg.len(), "dimension mismatch");
    let norm: f64 = v_num.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    // aq-lint: allow(R5): exact zero-vector guard; any nonzero norm takes the ratio path
    if norm == 0.0 {
        // ‖0 − v_alg‖ = ‖v_alg‖ = 1 for a unit reference
        return v_alg.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    }
    v_num
        .iter()
        .zip(v_alg)
        .map(|(n, a)| (*n * (1.0 / norm) - *a).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

/// A lock-step pair: a numeric simulation traced against the exact
/// algebraic (`Q[ω]`) reference of the same circuit.
///
/// This is the measurement harness behind the accuracy curves of
/// Figs. 3b/4b/5b — it is only possible *because* the algebraic
/// representation exists (Sec. V of the paper).
#[derive(Debug)]
pub struct PairedRun<'c, W: WeightContext> {
    subject: Simulator<'c, W>,
    reference: Simulator<'c, QomegaContext>,
    sample_every: usize,
}

impl<'c, W: WeightContext> PairedRun<'c, W> {
    /// Creates a paired run sampling the error every `sample_every` gates
    /// (and always at the final gate).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn new(subject_ctx: W, circuit: &'c Circuit, sample_every: usize) -> Self {
        assert!(sample_every > 0, "sampling interval must be positive");
        PairedRun {
            subject: Simulator::with_options(subject_ctx, circuit, SimOptions::default()),
            reference: Simulator::with_options(
                QomegaContext::new(),
                circuit,
                SimOptions::default(),
            ),
            sample_every,
        }
    }

    /// Runs both simulations to completion, returning the subject's trace
    /// (with error samples) and the reference's trace.
    pub fn run(mut self) -> (Trace, Trace) {
        let mut subject_trace = Trace::default();
        let mut reference_trace = Trace::default();
        loop {
            let more = self.subject.step();
            let more_ref = self.reference.step();
            debug_assert_eq!(more, more_ref, "paired simulations desynchronised");
            if !more {
                break;
            }
            let at_sample = self
                .subject
                .gates_applied()
                .is_multiple_of(self.sample_every)
                || self.subject.is_done();
            let error = if at_sample {
                let v_num = {
                    let s = self.subject.state();
                    self.subject.manager_mut().amplitudes(&s)
                };
                let v_alg = {
                    let s = self.reference.state();
                    self.reference.manager_mut().amplitudes(&s)
                };
                Some(normalized_distance(&v_num, &v_alg))
            } else {
                None
            };
            subject_trace.points.push(self.subject.sample(error));
            reference_trace.points.push(self.reference.sample(None));
        }
        subject_trace.engine = Some(self.subject.statistics());
        reference_trace.engine = Some(self.reference.statistics());
        (subject_trace, reference_trace)
    }
}

/// Checks whether two circuits implement the same unitary by building
/// both operator DDs in one manager and comparing root edges — the `O(1)`
/// equivalence check of Sec. V-B (after the two builds).
///
/// With an algebraic context the answer is *exact*; with a numeric one it
/// inherits the tolerance semantics (and the paper's trade-off).
///
/// # Panics
///
/// Panics if the circuits have different widths, or an operation is not
/// representable in the weight system.
///
/// # Examples
///
/// ```
/// use aq_circuits::Circuit;
/// use aq_dd::{GateMatrix, QomegaContext};
/// use aq_sim::circuits_equivalent;
///
/// let mut a = Circuit::new(1);
/// for _ in 0..8 {
///     a.push_gate(GateMatrix::t(), 0, &[]);
/// }
/// let identity = Circuit::new(1);
/// assert!(circuits_equivalent(QomegaContext::new(), &a, &identity));
/// ```
pub fn circuits_equivalent<W: WeightContext>(ctx: W, a: &Circuit, b: &Circuit) -> bool {
    assert_eq!(a.n_qubits(), b.n_qubits(), "circuit width mismatch");
    // Both unitaries are built in ONE manager; canonicity makes the final
    // comparison a root-edge equality.
    let mut m = aq_dd::Manager::new(ctx, a.n_qubits());
    let ua = crate::circuit_unitary(&mut m, a);
    let ub = crate::circuit_unitary(&mut m, b);
    ua == ub
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::NumericContext;

    #[test]
    fn distance_of_identical_vectors_is_zero() {
        let v = vec![Complex64::new(0.6, 0.0), Complex64::new(0.0, 0.8)];
        assert!(normalized_distance(&v, &v) < 1e-15);
    }

    #[test]
    fn distance_renormalises_subject() {
        let v_alg = vec![Complex64::ONE, Complex64::ZERO];
        let v_num = vec![Complex64::new(0.5, 0.0), Complex64::ZERO]; // same direction, shorter
        assert!(normalized_distance(&v_num, &v_alg) < 1e-15);
    }

    #[test]
    fn zero_vector_has_unit_distance() {
        let v_alg = vec![Complex64::ONE, Complex64::ZERO];
        let v_num = vec![Complex64::ZERO, Complex64::ZERO];
        assert!((normalized_distance(&v_num, &v_alg) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn orthogonal_unit_vectors_have_distance_sqrt2() {
        let a = vec![Complex64::ONE, Complex64::ZERO];
        let b = vec![Complex64::ZERO, Complex64::ONE];
        assert!((normalized_distance(&a, &b) - std::f64::consts::SQRT_2).abs() < 1e-15);
    }

    #[test]
    fn paired_run_on_small_grover() {
        let circuit = aq_circuits::grover(4, 5);
        let pair = PairedRun::new(NumericContext::with_eps(1e-13), &circuit, 10);
        let (subject, reference) = pair.run();
        assert_eq!(subject.points.len(), circuit.len());
        assert_eq!(reference.points.len(), circuit.len());
        // tolerant doubles track the exact result closely on a tiny case
        let err = subject.final_error().expect("sampled at the end");
        assert!(err < 1e-9, "unexpectedly large error {err}");
        // the algebraic reference stays compact
        assert!(reference.peak_nodes() <= 16);
    }
}
