//! Seeded shot sampling from simulated states.
//!
//! A sampling job ([`JobSpec::sample`]) draws `shots` bitstrings from the
//! distribution a circuit prepares, using the workspace's deterministic
//! xorshift RNG: equal seeds give bit-identical histograms, across runs
//! and across machines. Two execution strategies cover the two circuit
//! classes:
//!
//! * **Measurement-free** circuits are simulated once; the final state DD
//!   is turned into a [`StateSampler`] (one conditional-probability entry
//!   per node) and each shot is an `O(n_qubits)` root-to-terminal walk.
//!   The exact algebraic contexts additionally report each observed
//!   outcome's probability in closed form — `(1) / sqrt2^2` rather than
//!   `0.4999…` — which is how the GHZ acceptance check distinguishes
//!   exactly ½ from ε-close.
//! * Circuits with **mid-circuit measurement, reset or classical control**
//!   fork per shot: every shot replays the circuit, collapsing the state
//!   at each measurement with [`Manager::try_measure_qubit`] and keeping
//!   the classical register in a `u64` for `if (c==v)` conditions.
//!
//! Both strategies run under the job budget (every engine call probes it)
//! and honour cooperative cancellation between operations and shots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use aq_circuits::{Circuit, Op};
use aq_dd::fxhash::FxHashMap;
use aq_dd::{Edge, EngineError, GateMatrix, Manager, MatId, VecId, WeightContext};
use aq_testutil::Rng;

use crate::job::{JobAbortInfo, JobOutcome, JobSpec, SampleParams};

/// Shot histogram plus per-outcome probabilities for one sampling job.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReport {
    /// Shots drawn (the histogram counts sum to exactly this).
    pub shots: u64,
    /// The RNG seed the shots were drawn with.
    pub seed: u64,
    /// `true` when the circuit contains non-unitary operations and every
    /// shot replayed the circuit (fork-per-shot); `false` when one
    /// simulation fed a final-state sampler.
    pub forked: bool,
    /// `(basis index, count)` for every observed bitstring, ascending by
    /// index. Qubit 0 is the most significant bit of the index.
    pub counts: Vec<(u64, u64)>,
    /// The final-state probability of each observed outcome, in histogram
    /// order. Empty on the fork-per-shot path, where the final
    /// distribution is conditioned on per-shot measurement outcomes and
    /// no single probability describes an entry.
    pub probabilities: Vec<SampleProbability>,
}

impl SampleReport {
    /// Sum of all histogram counts (equals [`SampleReport::shots`]).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, c)| c).sum()
    }
}

/// Probability of one sampled outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleProbability {
    /// Basis-state index of the outcome.
    pub index: u64,
    /// The probability as a double.
    pub probability: f64,
    /// Closed-form rendering of the exact probability — present for the
    /// algebraic weight systems, `None` for the numeric context.
    pub exact: Option<String>,
}

/// Runs one sampling job on a cold manager (the [`run_job`] sampling
/// path).
///
/// [`run_job`]: crate::run_job
pub(crate) fn sample_job<W: WeightContext>(
    ctx: W,
    spec: &JobSpec<'_>,
    params: SampleParams,
    cancel: Option<&AtomicBool>,
) -> JobOutcome {
    let manager = match spec.options.cache_capacity {
        Some(c) => Manager::with_cache_capacity(ctx, spec.circuit.n_qubits(), c),
        None => Manager::new(ctx, spec.circuit.n_qubits()),
    };
    sample_with_manager(manager, spec, params, cancel).0
}

/// Runs one sampling job on a caller-supplied manager and hands the
/// manager back afterwards — the session entry point, mirroring
/// [`run_with_manager`](crate::job::run_with_manager).
pub(crate) fn sample_with_manager<W: WeightContext>(
    mut manager: Manager<W>,
    spec: &JobSpec<'_>,
    params: SampleParams,
    cancel: Option<&AtomicBool>,
) -> (JobOutcome, Manager<W>) {
    let t = Instant::now();
    let mut driver = Driver {
        m: &mut manager,
        circuit: spec.circuit,
        compact_threshold: spec.options.compact_threshold,
        gate_cache: FxHashMap::default(),
        ops_applied: 0,
        cancel,
    };
    let mut final_nodes = 0;
    let result = (|| {
        // Same construction order as the simulator: build the start state,
        // then install the budget, so its wall-clock epoch starts at the
        // first operation.
        let mut state = driver.m.try_basis_state(spec.start)?;
        driver.m.set_budget(spec.options.budget);
        let mut rng = Rng::from_seed(params.seed);
        let report = if spec.circuit.has_nonunitary_ops() {
            sample_forked(&mut driver, &mut state, spec, params, &mut rng)?
        } else {
            sample_final_state(&mut driver, &mut state, spec, params, &mut rng)?
        };
        final_nodes = driver.m.vec_nodes(&state);
        Ok(report)
    })();
    let ops_applied = driver.ops_applied;
    let seconds = t.elapsed().as_secs_f64();
    let (sample, aborted) = match result {
        Ok(report) => (Some(report), None),
        Err(e) => (None, Some(abort_info(e))),
    };
    let outcome = JobOutcome {
        gates_applied: ops_applied,
        seconds,
        final_nodes,
        statistics: manager.statistics(),
        top_probabilities: Vec::new(),
        resumed: false,
        sample,
        aborted,
    };
    (outcome, manager)
}

/// Sampler failure: an engine error, or an eviction from outside.
enum SampleError {
    Engine(EngineError),
    Evicted,
}

impl From<EngineError> for SampleError {
    fn from(e: EngineError) -> Self {
        SampleError::Engine(e)
    }
}

fn abort_info(e: SampleError) -> JobAbortInfo {
    match e {
        SampleError::Engine(e) => JobAbortInfo {
            reason: e.to_string(),
            checkpoint: None,
            evicted: false,
        },
        SampleError::Evicted => JobAbortInfo {
            reason: "evicted: cancelled by the caller".into(),
            checkpoint: None,
            evicted: true,
        },
    }
}

/// Shared op-application machinery for both strategies: a per-op-index
/// operator cache, compaction, cancellation.
struct Driver<'a, 'c, W: WeightContext> {
    m: &'a mut Manager<W>,
    circuit: &'c Circuit,
    compact_threshold: usize,
    /// Operator DDs keyed by op index (each index is one fixed operation,
    /// so the key never aliases). Reset corrections key the X gate by
    /// `(index, true)`.
    gate_cache: FxHashMap<(usize, bool), Edge<MatId>>,
    ops_applied: usize,
    cancel: Option<&'a AtomicBool>,
}

impl<W: WeightContext> Driver<'_, '_, W> {
    fn check_cancel(&self) -> Result<(), SampleError> {
        if self.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return Err(SampleError::Evicted);
        }
        Ok(())
    }

    fn operator(&mut self, index: usize, op: &Op) -> Result<Edge<MatId>, EngineError> {
        if let Some(&hit) = self.gate_cache.get(&(index, false)) {
            return Ok(hit);
        }
        let built = crate::operators::try_op_operator(self.m, op)?;
        self.gate_cache.insert((index, false), built);
        Ok(built)
    }

    /// The X correction a reset applies after collapsing to `|1⟩`.
    fn reset_correction(&mut self, index: usize, qubit: u32) -> Result<Edge<MatId>, EngineError> {
        if let Some(&hit) = self.gate_cache.get(&(index, true)) {
            return Ok(hit);
        }
        let built = self.m.try_gate(&GateMatrix::x(), qubit, &[])?;
        self.gate_cache.insert((index, true), built);
        Ok(built)
    }

    fn maybe_compact(&mut self, state: &mut Edge<VecId>) {
        if self.m.allocated_nodes() > self.compact_threshold {
            // A failed compaction is not fatal (see the simulator's step
            // loop); cached operator edges die with the old arena either
            // way.
            if let Ok((vs, _)) = self.m.try_compact(&[*state], &[]) {
                *state = vs[0];
                self.gate_cache.clear();
            }
        }
    }

    /// Applies one op to `state`, updating the classical register and
    /// drawing measurement outcomes from `rng`.
    fn apply(
        &mut self,
        index: usize,
        op: &Op,
        state: &mut Edge<VecId>,
        creg: &mut u64,
        rng: &mut Rng,
    ) -> Result<(), SampleError> {
        match op {
            Op::Measure { qubit, cbit } => {
                let (_p0, p1) = self.m.try_qubit_marginal(state, *qubit)?;
                let outcome = rng.unit_f64() < p1;
                let (collapsed, _) = self.m.try_measure_qubit(state, *qubit, outcome)?;
                *state = collapsed;
                if outcome {
                    *creg |= 1 << cbit;
                } else {
                    *creg &= !(1 << cbit);
                }
            }
            Op::Reset { qubit } => {
                let (_p0, p1) = self.m.try_qubit_marginal(state, *qubit)?;
                let outcome = rng.unit_f64() < p1;
                let (collapsed, _) = self.m.try_measure_qubit(state, *qubit, outcome)?;
                *state = collapsed;
                if outcome {
                    let x = self.reset_correction(index, *qubit)?;
                    *state = self.m.try_mat_vec(&x, state)?;
                }
            }
            Op::Conditional { value, op } => {
                if *creg == *value {
                    let g = self.operator(index, op)?;
                    *state = self.m.try_mat_vec(&g, state)?;
                }
            }
            _ => {
                let g = self.operator(index, op)?;
                *state = self.m.try_mat_vec(&g, state)?;
            }
        }
        self.ops_applied += 1;
        self.maybe_compact(state);
        Ok(())
    }
}

/// Measurement-free strategy: simulate once, sample the final state.
fn sample_final_state<W: WeightContext>(
    driver: &mut Driver<'_, '_, W>,
    state: &mut Edge<VecId>,
    spec: &JobSpec<'_>,
    params: SampleParams,
    rng: &mut Rng,
) -> Result<SampleReport, SampleError> {
    let mut creg = 0u64;
    for (i, op) in driver.circuit.iter().enumerate() {
        driver.check_cancel()?;
        driver.apply(i, op, state, &mut creg, rng)?;
    }
    let sampler = driver.m.try_state_sampler(state)?;
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for shot in 0..params.shots {
        if shot % 4096 == 0 {
            driver.check_cancel()?;
        }
        *counts.entry(sampler.draw(|| rng.unit_f64())).or_insert(0) += 1;
    }
    let exact = spec.scheme.is_algebraic();
    let probabilities = counts
        .keys()
        .map(|&index| {
            let p = driver.m.basis_probability(state, index);
            SampleProbability {
                index,
                probability: driver.m.ctx().to_complex(&p).re,
                exact: exact.then(|| p.to_string()),
            }
        })
        .collect();
    Ok(SampleReport {
        shots: params.shots,
        seed: params.seed,
        forked: false,
        counts: counts.into_iter().collect(),
        probabilities,
    })
}

/// Fork-per-shot strategy: every shot replays the circuit, collapsing at
/// each measurement.
fn sample_forked<W: WeightContext>(
    driver: &mut Driver<'_, '_, W>,
    state: &mut Edge<VecId>,
    spec: &JobSpec<'_>,
    params: SampleParams,
    rng: &mut Rng,
) -> Result<SampleReport, SampleError> {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..params.shots {
        driver.check_cancel()?;
        *state = driver.m.try_basis_state(spec.start)?;
        let mut creg = 0u64;
        for (i, op) in driver.circuit.iter().enumerate() {
            driver.apply(i, op, state, &mut creg, rng)?;
        }
        let sampler = driver.m.try_state_sampler(state)?;
        *counts.entry(sampler.draw(|| rng.unit_f64())).or_insert(0) += 1;
    }
    Ok(SampleReport {
        shots: params.shots,
        seed: params.seed,
        forked: true,
        counts: counts.into_iter().collect(),
        probabilities: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_job, SchemeSpec};

    fn all_schemes() -> [SchemeSpec; 4] {
        [
            SchemeSpec::Numeric { eps: 0.0 },
            SchemeSpec::Numeric { eps: 1e-10 },
            SchemeSpec::Qomega,
            SchemeSpec::Gcd,
        ]
    }

    fn sample_spec(
        circuit: &aq_circuits::Circuit,
        scheme: SchemeSpec,
        shots: u64,
        seed: u64,
    ) -> JobSpec<'_> {
        let mut spec = JobSpec::new(circuit, 0, scheme);
        spec.sample = Some(SampleParams { shots, seed });
        spec
    }

    #[test]
    fn ghz_sampling_is_deterministic_and_exactly_half() {
        let c = aq_circuits::ghz(10);
        for scheme in all_schemes() {
            let a = run_job(&sample_spec(&c, scheme.clone(), 500, 7), None);
            let b = run_job(&sample_spec(&c, scheme.clone(), 500, 7), None);
            let ra = a.sample.expect("completed sample job");
            let rb = b.sample.expect("completed sample job");
            assert_eq!(ra, rb, "same seed must give a bit-identical report");
            assert_eq!(ra.total(), 500);
            assert!(!ra.forked);
            // only |0…0⟩ and |1…1⟩ can appear
            for &(index, _) in &ra.counts {
                assert!(index == 0 || index == (1 << 10) - 1, "index {index}");
            }
            for p in &ra.probabilities {
                if scheme.is_algebraic() {
                    // the acceptance bar: exactly ½, not ε-close
                    assert_eq!(p.probability, 0.5, "GHZ outcome must be exactly ½");
                    let exact = p.exact.as_deref().expect("exact rendering");
                    assert!(!exact.is_empty());
                } else {
                    assert!((p.probability - 0.5).abs() < 1e-12);
                    assert!(p.exact.is_none());
                }
            }
            // different seeds must (overwhelmingly) differ
            let other = run_job(&sample_spec(&c, scheme.clone(), 500, 8), None)
                .sample
                .expect("completed");
            assert_ne!(ra.counts, other.counts, "seed must matter");
        }
    }

    #[test]
    fn ghz_histograms_agree_across_all_schemes() {
        // All four schemes see the same exact ½ marginals, so with one
        // seed the drawn shots are identical bit for bit.
        let c = aq_circuits::ghz(6);
        let reference = run_job(
            &sample_spec(&c, SchemeSpec::Numeric { eps: 0.0 }, 256, 99),
            None,
        )
        .sample
        .expect("completed");
        for scheme in all_schemes() {
            let r = run_job(&sample_spec(&c, scheme, 256, 99), None)
                .sample
                .expect("completed");
            assert_eq!(r.counts, reference.counts);
        }
    }

    #[test]
    fn bernstein_vazirani_sampling_is_deterministic_in_outcome() {
        let secret = 0b1011;
        let c = aq_circuits::bernstein_vazirani(4, secret);
        for scheme in all_schemes() {
            let r = run_job(&sample_spec(&c, scheme, 64, 3), None)
                .sample
                .expect("completed");
            // data register holds the secret, ancilla (lsb) is |0⟩
            assert_eq!(r.counts, vec![(secret << 1, 64)]);
            assert_eq!(r.probabilities.len(), 1);
            assert!((r.probabilities[0].probability - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn teleportation_with_classical_control_reproduces_the_message() {
        // Prepare |1⟩ on the message qubit; after teleportation qubit 2
        // must be |1⟩ in every shot, whatever the measurement outcomes.
        let mut c = aq_circuits::Circuit::new(3);
        c.push_gate(aq_dd::GateMatrix::x(), 0, &[]);
        c.extend_from(&aq_circuits::teleport());
        for scheme in all_schemes() {
            let r = run_job(&sample_spec(&c, scheme.clone(), 128, 11), None)
                .sample
                .unwrap_or_else(|| panic!("sample job must complete under {scheme}"));
            assert!(r.forked, "mid-circuit measurement forks per shot");
            assert_eq!(r.total(), 128);
            for &(index, _) in &r.counts {
                assert_eq!(index & 1, 1, "qubit 2 must be |1⟩, got index {index:b}");
            }
        }
    }

    #[test]
    fn forked_sampling_is_deterministic_per_seed() {
        let mut c = aq_circuits::Circuit::new(3);
        c.push_gate(aq_dd::GateMatrix::h(), 0, &[]);
        c.extend_from(&aq_circuits::teleport());
        for scheme in all_schemes() {
            let a = run_job(&sample_spec(&c, scheme.clone(), 200, 42), None)
                .sample
                .expect("completed");
            let b = run_job(&sample_spec(&c, scheme, 200, 42), None)
                .sample
                .expect("completed");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reset_reuses_a_qubit() {
        // H then reset: the qubit must come back to |0⟩ regardless of the
        // measured branch.
        let mut c = aq_circuits::Circuit::new(2);
        c.push_gate(aq_dd::GateMatrix::h(), 0, &[]);
        c.push_reset(0);
        c.push_gate(aq_dd::GateMatrix::x(), 1, &[]);
        for scheme in all_schemes() {
            let r = run_job(&sample_spec(&c, scheme, 64, 5), None)
                .sample
                .expect("completed");
            assert_eq!(r.counts, vec![(0b01, 64)], "state must be |01⟩");
        }
    }

    #[test]
    fn sampler_respects_the_budget() {
        use aq_dd::RunBudget;
        let c = aq_circuits::ghz(8);
        let mut spec = sample_spec(&c, SchemeSpec::Gcd, 32, 1);
        spec.options.budget = RunBudget::unlimited().with_max_nodes(2);
        let out = run_job(&spec, None);
        let abort = out.aborted.expect("tiny budget aborts");
        assert!(abort.reason.contains("node budget"), "{}", abort.reason);
        assert!(out.sample.is_none());
    }

    #[test]
    fn cancellation_evicts_a_sampling_job() {
        use std::sync::atomic::AtomicBool;
        let c = aq_circuits::ghz(6);
        let cancel = AtomicBool::new(true);
        let out = run_job(&sample_spec(&c, SchemeSpec::Qomega, 16, 1), Some(&cancel));
        let abort = out.aborted.expect("cancelled job aborts");
        assert!(abort.evicted);
        assert!(out.sample.is_none());
    }

    #[test]
    fn unrepresentable_renormalization_aborts_cleanly_in_exact_contexts() {
        // T·H leaves measurement probability (2+√2)/4: no exact 1/√p.
        let mut c = aq_circuits::Circuit::new(1);
        c.push_gate(aq_dd::GateMatrix::h(), 0, &[]);
        c.push_gate(aq_dd::GateMatrix::t(), 0, &[]);
        c.push_gate(aq_dd::GateMatrix::h(), 0, &[]);
        c.push_measure(0, 0);
        let out = run_job(&sample_spec(&c, SchemeSpec::Gcd, 4, 1), None);
        let abort = out.aborted.expect("unrepresentable 1/√p must abort");
        assert!(
            abort.reason.contains("not representable"),
            "{}",
            abort.reason
        );
        // the numeric context handles the same job fine
        let out = run_job(
            &sample_spec(&c, SchemeSpec::Numeric { eps: 1e-10 }, 64, 1),
            None,
        );
        assert!(out.aborted.is_none());
        assert_eq!(out.sample.expect("completed").total(), 64);
    }
}
