//! Job-oriented simulation entry point.
//!
//! A *job* is one self-contained simulation request: a circuit, a start
//! state, a weight scheme chosen at runtime (rather than by a generic
//! parameter), tuning options, and optionally a checkpoint to resume
//! from. [`run_job`] owns the whole lifecycle — scheme dispatch,
//! resume-label matching, the step loop, cooperative cancellation,
//! checkpoint-on-abort — and returns a flat [`JobOutcome`] that callers
//! (the `aq-serve` service, the bench binaries) can report without
//! touching the `Simulator` API themselves.
//!
//! Cancellation is cooperative: pass an [`AtomicBool`] and set it from
//! another thread; the step loop checks it between operations, writes a
//! checkpoint (when configured) and returns an evicted abort. Combined
//! with the bit-identical resume guarantee of
//! [`Simulator::resume`](crate::Simulator::resume), an evicted job can be
//! resubmitted and finishes exactly as an uninterrupted run would.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use aq_circuits::Circuit;
use aq_dd::{
    EngineStatistics, GcdContext, Manager, NormScheme, NumericContext, QomegaContext, WeightContext,
};

use crate::simulator::{SimOptions, Simulator};

/// Runtime choice of the engine's weight system for one job.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeSpec {
    /// IEEE 754 doubles with tolerance `eps`, normalized by the
    /// largest-magnitude weight (the stable scheme the figure harness
    /// uses).
    Numeric {
        /// Rounding tolerance ε (0 = no merging).
        eps: f64,
    },
    /// Exact weights in the field `Q[ω]` (the paper's Algorithm 2).
    Qomega,
    /// Exact weights in the ring `D[ω]` with GCD normalization (the
    /// paper's Algorithm 3).
    Gcd,
}

impl SchemeSpec {
    /// `true` for the exact algebraic schemes.
    pub fn is_algebraic(&self) -> bool {
        !matches!(self, SchemeSpec::Numeric { .. })
    }

    /// Canonical short label (`numeric_eps1e-10`, `qomega`, `gcd`), used
    /// in checkpoint labels and reports.
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::Numeric { eps } if aq_rings::is_exact_eps(*eps) => "numeric_eps0".into(),
            SchemeSpec::Numeric { eps } => format!("numeric_eps{eps:e}"),
            SchemeSpec::Qomega => "qomega".into(),
            SchemeSpec::Gcd => "gcd".into(),
        }
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One simulation request.
#[derive(Debug)]
pub struct JobSpec<'c> {
    /// The circuit to simulate.
    pub circuit: &'c Circuit,
    /// Basis state to start from.
    pub start: u64,
    /// Weight system to run under.
    pub scheme: SchemeSpec,
    /// Simulator tuning, including the budget and
    /// [`SimOptions::checkpoint_on_abort`] (also honoured for
    /// cancellation evictions).
    pub options: SimOptions,
    /// Free-form run identification. A checkpoint written by this job is
    /// tagged with it, and [`JobSpec::resume`] files are only honoured
    /// when their stored label matches — a stale or foreign checkpoint
    /// silently falls back to a fresh run.
    pub label: String,
    /// Checkpoint to continue from, if any.
    pub resume: Option<PathBuf>,
    /// How many of the largest measurement probabilities to report on
    /// completion (`0` skips amplitude extraction entirely, which
    /// matters for wide registers).
    pub top_k: usize,
    /// When set, the job is a *sampling* job: instead of reporting the
    /// final state it draws shots from it (see [`crate::sample`]).
    /// Sampling jobs ignore [`JobSpec::resume`] — a shot stream has no
    /// mid-point checkpoint.
    pub sample: Option<SampleParams>,
}

/// Parameters of a sampling job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleParams {
    /// Number of shots to draw.
    pub shots: u64,
    /// Seed of the deterministic sampler RNG: equal seeds give equal
    /// histograms, bit for bit.
    pub seed: u64,
}

impl<'c> JobSpec<'c> {
    /// A job with default options: run `circuit` from `|start⟩` under
    /// `scheme`, no budget, no resume, top-4 probabilities.
    pub fn new(circuit: &'c Circuit, start: u64, scheme: SchemeSpec) -> Self {
        let label = scheme.label();
        JobSpec {
            circuit,
            start,
            scheme,
            options: SimOptions {
                record_trace: false,
                ..SimOptions::default()
            },
            label,
            resume: None,
            top_k: 4,
            sample: None,
        }
    }
}

/// Why an aborted job stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAbortInfo {
    /// Rendered engine/simulation error, or the eviction notice.
    pub reason: String,
    /// Checkpoint written at the abort point, when
    /// [`SimOptions::checkpoint_on_abort`] was set and the dump
    /// succeeded.
    pub checkpoint: Option<PathBuf>,
    /// `true` when the job was cancelled from outside (service eviction)
    /// rather than stopped by its own budget or an engine error.
    pub evicted: bool,
}

/// Flat result of [`run_job`]: measurements of whatever ran, plus the
/// abort record when the job did not complete.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Operations applied (cumulative across resume).
    pub gates_applied: usize,
    /// Wall-clock seconds of this invocation's step loop.
    pub seconds: f64,
    /// Nodes of the state DD at the end (or at the abort point).
    pub final_nodes: usize,
    /// Engine counters at the end of the run.
    pub statistics: EngineStatistics,
    /// The `top_k` largest measurement probabilities as
    /// `(basis index, probability)`, descending. Empty for aborted jobs
    /// and when `top_k` is 0.
    pub top_probabilities: Vec<(u64, f64)>,
    /// Whether the run continued from a matching resume checkpoint.
    pub resumed: bool,
    /// Shot histogram and per-outcome probabilities, present exactly when
    /// the job was a completed sampling job ([`JobSpec::sample`]).
    pub sample: Option<crate::sample::SampleReport>,
    /// `None` for completed jobs.
    pub aborted: Option<JobAbortInfo>,
}

impl JobOutcome {
    /// `true` when the whole circuit was applied.
    pub fn is_completed(&self) -> bool {
        self.aborted.is_none()
    }
}

/// Runs one job to completion, abort, or cancellation. Never panics on
/// budget exhaustion or unrepresentable gates — those come back as
/// [`JobOutcome::aborted`].
///
/// `cancel` is checked between operations; when it becomes `true` the job
/// checkpoints (if configured) and returns an abort with
/// [`JobAbortInfo::evicted`] set.
pub fn run_job(spec: &JobSpec<'_>, cancel: Option<&AtomicBool>) -> JobOutcome {
    match &spec.scheme {
        SchemeSpec::Numeric { eps } => run_with(
            NumericContext::with_eps_and_scheme(*eps, NormScheme::MaxMagnitude),
            spec,
            cancel,
        ),
        SchemeSpec::Qomega => run_with(QomegaContext::new(), spec, cancel),
        SchemeSpec::Gcd => run_with(GcdContext::new(), spec, cancel),
    }
}

fn run_with<W: WeightContext>(
    ctx: W,
    spec: &JobSpec<'_>,
    cancel: Option<&AtomicBool>,
) -> JobOutcome {
    if let Some(params) = spec.sample {
        return crate::sample::sample_job(ctx, spec, params, cancel);
    }
    // Only a checkpoint taken from the same stage resumes; anything else
    // (missing file, corrupt file, different label or circuit) falls back
    // to a fresh run.
    let resumed = spec.resume.as_deref().and_then(|path| {
        let info = crate::checkpoint::peek_checkpoint(path).ok()?;
        if info.label != spec.label {
            return None;
        }
        Simulator::resume(ctx.clone(), spec.circuit, path, spec.options.clone()).ok()
    });
    let was_resumed = resumed.is_some();
    let (mut sim, aborted) = match resumed {
        Some((sim, _)) => (sim, None),
        None => {
            let mut sim = Simulator::with_options(ctx, spec.circuit, spec.options.clone());
            let aborted = sim.try_reset_to(spec.start).err().map(|e| JobAbortInfo {
                reason: e.to_string(),
                checkpoint: None,
                evicted: false,
            });
            (sim, aborted)
        }
    };
    drive(&mut sim, spec, was_resumed, aborted, cancel)
}

/// Runs one fresh (non-resume) job on a caller-supplied manager and hands
/// the manager back afterwards, whatever the outcome. This is the session
/// entry point: [`EngineSession`](crate::EngineSession) parks the returned
/// manager for the next job. The manager must already match the job
/// (correct context and qubit count — typically straight out of
/// [`Manager::reset_session`](aq_dd::Manager::reset_session)); results are
/// bit-identical to [`run_job`] on a cold manager.
pub(crate) fn run_with_manager<W: WeightContext>(
    manager: Manager<W>,
    spec: &JobSpec<'_>,
    cancel: Option<&AtomicBool>,
) -> (JobOutcome, Manager<W>) {
    if let Some(params) = spec.sample {
        return crate::sample::sample_with_manager(manager, spec, params, cancel);
    }
    let mut sim = Simulator::with_manager(manager, spec.circuit, spec.options.clone());
    let aborted = sim.try_reset_to(spec.start).err().map(|e| JobAbortInfo {
        reason: e.to_string(),
        checkpoint: None,
        evicted: false,
    });
    let outcome = drive(&mut sim, spec, false, aborted, cancel);
    (outcome, sim.into_manager())
}

/// The shared job lifecycle: cancellation-aware step loop,
/// checkpoint-on-abort, measurement extraction. `aborted` carries a
/// pre-loop failure (e.g. the start state exceeded the budget).
fn drive<W: WeightContext>(
    sim: &mut Simulator<'_, W>,
    spec: &JobSpec<'_>,
    was_resumed: bool,
    mut aborted: Option<JobAbortInfo>,
    cancel: Option<&AtomicBool>,
) -> JobOutcome {
    let dump_checkpoint = |sim: &Simulator<'_, W>| -> Option<PathBuf> {
        let path = spec.options.checkpoint_on_abort.as_ref()?;
        match sim.checkpoint(path, &spec.label) {
            Ok(()) => Some(path.clone()),
            Err(e) => {
                eprintln!("warning: could not write checkpoint: {e}");
                None
            }
        }
    };

    let t = Instant::now();
    while aborted.is_none() {
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            aborted = Some(JobAbortInfo {
                reason: "evicted: cancelled by the caller".into(),
                checkpoint: dump_checkpoint(sim),
                evicted: true,
            });
            break;
        }
        match sim.try_step() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                aborted = Some(JobAbortInfo {
                    reason: e.to_string(),
                    checkpoint: dump_checkpoint(sim),
                    evicted: false,
                });
            }
        }
    }
    let seconds = t.elapsed().as_secs_f64();

    let top_probabilities = if aborted.is_none() && spec.top_k > 0 {
        let state = sim.state();
        top_k_probabilities(&sim.manager_mut().amplitudes(&state), spec.top_k)
    } else {
        Vec::new()
    };

    JobOutcome {
        gates_applied: sim.gates_applied(),
        seconds,
        final_nodes: sim.nodes(),
        statistics: sim.statistics(),
        top_probabilities,
        resumed: was_resumed,
        sample: None,
        aborted,
    }
}

fn top_k_probabilities(amplitudes: &[aq_rings::Complex64], k: usize) -> Vec<(u64, f64)> {
    let mut probs: Vec<(u64, f64)> = amplitudes
        .iter()
        .enumerate()
        .map(|(i, a)| (i as u64, a.norm_sqr()))
        .collect();
    probs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    probs.truncate(k);
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::RunBudget;

    #[test]
    fn completed_job_reports_top_probabilities() {
        let c = aq_circuits::grover(4, 11);
        let out = run_job(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        assert!(out.is_completed());
        assert_eq!(out.gates_applied, c.len());
        assert_eq!(out.top_probabilities.len(), 4);
        assert_eq!(out.top_probabilities[0].0, 11, "marked element wins");
        assert!(out.top_probabilities[0].1 > 0.9);
        assert!(!out.resumed);
    }

    #[test]
    fn budget_abort_surfaces_reason_and_statistics() {
        let c = aq_circuits::grover(5, 3);
        let mut spec = JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.0 });
        spec.options.budget = RunBudget::unlimited().with_max_nodes(8);
        let out = run_job(&spec, None);
        let abort = out.aborted.expect("tight budget aborts");
        assert!(abort.reason.contains("node budget"), "{}", abort.reason);
        assert!(!abort.evicted);
        assert!(abort.checkpoint.is_none(), "no checkpoint configured");
        assert!(out.top_probabilities.is_empty());
    }

    #[test]
    fn cancellation_evicts_with_checkpoint_and_resume_is_bit_identical() {
        let c = aq_circuits::grover(5, 19);
        let path = std::env::temp_dir().join("aq_job_evict_test.aqckp");
        std::fs::remove_file(&path).ok();

        // cancel before the first step: the job checkpoints and reports
        // an eviction
        let cancel = AtomicBool::new(true);
        let mut spec = JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 1e-10 });
        spec.options.checkpoint_on_abort = Some(path.clone());
        let out = run_job(&spec, Some(&cancel));
        let abort = out.aborted.expect("cancelled job aborts");
        assert!(abort.evicted);
        assert_eq!(abort.checkpoint.as_deref(), Some(path.as_path()));

        // resuming the evicted job completes it, bit-identical to an
        // uninterrupted run
        let mut resume_spec = JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 1e-10 });
        resume_spec.resume = Some(path.clone());
        let resumed = run_job(&resume_spec, None);
        assert!(resumed.is_completed());
        assert!(resumed.resumed);

        let fresh = run_job(
            &JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 1e-10 }),
            None,
        );
        assert_eq!(resumed.final_nodes, fresh.final_nodes);
        assert_eq!(resumed.top_probabilities, fresh.top_probabilities);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_checkpoint_label_falls_back_to_fresh_run() {
        let c = aq_circuits::grover(4, 7);
        let path = std::env::temp_dir().join("aq_job_label_test.aqckp");
        std::fs::remove_file(&path).ok();
        let cancel = AtomicBool::new(true);
        let mut spec = JobSpec::new(&c, 0, SchemeSpec::Qomega);
        spec.label = "stage-a".into();
        spec.options.checkpoint_on_abort = Some(path.clone());
        run_job(&spec, Some(&cancel));
        assert!(path.exists());

        let mut other = JobSpec::new(&c, 0, SchemeSpec::Qomega);
        other.label = "stage-b".into();
        other.resume = Some(path.clone());
        let out = run_job(&other, None);
        assert!(out.is_completed());
        assert!(!out.resumed, "label mismatch must not resume");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeSpec::Numeric { eps: 0.0 }.label(), "numeric_eps0");
        assert_eq!(
            SchemeSpec::Numeric { eps: 1e-10 }.label(),
            "numeric_eps1e-10"
        );
        assert_eq!(SchemeSpec::Qomega.label(), "qomega");
        assert_eq!(SchemeSpec::Gcd.label(), "gcd");
        assert!(SchemeSpec::Gcd.is_algebraic());
        assert!(!SchemeSpec::Numeric { eps: 0.0 }.is_algebraic());
    }
}
