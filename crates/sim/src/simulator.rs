//! The circuit simulator: applies operations to a state DD and traces.

use std::sync::Arc;
use std::time::Instant;

use aq_circuits::{Circuit, Op};
use aq_dd::fxhash::FxHashMap;
use aq_dd::{Edge, EngineStatistics, Manager, MatId, VecId, WeightContext, WeightId};
use aq_rings::Complex64;

use crate::trace::{Trace, TracePoint};

/// Tuning knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Record a [`TracePoint`] after every operation (otherwise only the
    /// final state is kept).
    pub record_trace: bool,
    /// Compact the manager when its arena exceeds this many nodes.
    pub compact_threshold: usize,
    /// Slot count for the engine's compute caches (`None` = engine
    /// default). Smaller caches trade recomputation for memory; results
    /// are identical either way because the caches are lossy memoisation.
    pub cache_capacity: Option<usize>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            record_trace: true,
            compact_threshold: 4_000_000,
            cache_capacity: None,
        }
    }
}

/// Result of a completed run.
#[derive(Debug)]
pub struct SimResult {
    /// Amplitudes of the final state (complex doubles).
    pub amplitudes: Vec<Complex64>,
    /// Nodes of the final state DD.
    pub final_nodes: usize,
    /// The time series (empty unless tracing was enabled).
    pub trace: Trace,
    /// Engine counters at the end of the run (cache hit rates, unique
    /// table loads, compactions).
    pub statistics: EngineStatistics,
}

impl SimResult {
    /// Measurement probabilities `|α_i|²`.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }
}

/// A stateful simulator over one weight system.
///
/// Operations are translated into decision-diagram operators once and
/// cached; walking the circuit is a sequence of matrix–vector products.
#[derive(Debug)]
pub struct Simulator<'c, W: WeightContext> {
    manager: Manager<W>,
    circuit: &'c Circuit,
    state: Edge<VecId>,
    cursor: usize,
    elapsed: f64,
    gate_cache: FxHashMap<GateKey, Edge<MatId>>,
    options: SimOptions,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GateKey {
    Gate {
        entries: [WeightId; 4],
        target: u32,
        controls: Vec<(u32, bool)>,
    },
    Matching(usize), // Arc pointer identity
}

impl<'c, W: WeightContext> Simulator<'c, W> {
    /// Creates a simulator for `circuit` starting from `|0…0⟩`.
    pub fn new(ctx: W, circuit: &'c Circuit) -> Self {
        Simulator::with_options(ctx, circuit, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    pub fn with_options(ctx: W, circuit: &'c Circuit, options: SimOptions) -> Self {
        let mut manager = match options.cache_capacity {
            Some(c) => Manager::with_cache_capacity(ctx, circuit.n_qubits(), c),
            None => Manager::new(ctx, circuit.n_qubits()),
        };
        let state = manager.basis_state(0);
        Simulator {
            manager,
            circuit,
            state,
            cursor: 0,
            elapsed: 0.0,
            gate_cache: FxHashMap::default(),
            options,
        }
    }

    /// Restarts from the basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn reset_to(&mut self, index: u64) {
        self.state = self.manager.basis_state(index);
        self.cursor = 0;
        self.elapsed = 0.0;
    }

    /// The underlying manager (for extraction helpers).
    pub fn manager(&self) -> &Manager<W> {
        &self.manager
    }

    /// Mutable access to the manager.
    pub fn manager_mut(&mut self) -> &mut Manager<W> {
        &mut self.manager
    }

    /// The current state edge.
    pub fn state(&self) -> Edge<VecId> {
        self.state
    }

    /// Operations applied so far.
    pub fn gates_applied(&self) -> usize {
        self.cursor
    }

    /// Cumulative DD-operation time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Whether the whole circuit has been applied.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.circuit.len()
    }

    /// Engine counters so far (caches, unique tables, compactions).
    pub fn statistics(&self) -> EngineStatistics {
        self.manager.statistics()
    }

    /// Applies the next operation. Returns `false` when the circuit is
    /// exhausted.
    ///
    /// # Panics
    ///
    /// Panics if an operation is not representable in the weight system
    /// (compile to Clifford+T first).
    pub fn step(&mut self) -> bool {
        let Some(op) = self.circuit.ops().get(self.cursor) else {
            return false;
        };
        let start = Instant::now();
        let gate = self.operator_for(op);
        self.state = self.manager.mat_vec(&gate, &self.state);
        self.elapsed += start.elapsed().as_secs_f64();
        self.cursor += 1;

        if self.manager.allocated_nodes() > self.options.compact_threshold {
            let t = Instant::now();
            let (vs, _) = self.manager.compact(&[self.state], &[]);
            self.state = vs[0];
            self.gate_cache.clear();
            self.elapsed += t.elapsed().as_secs_f64();
        }
        true
    }

    /// Current state DD size.
    pub fn nodes(&self) -> usize {
        self.manager.vec_nodes(&self.state)
    }

    /// Samples a [`TracePoint`] for the current position.
    pub fn sample(&self, error: Option<f64>) -> TracePoint {
        TracePoint {
            gates_applied: self.cursor,
            nodes: self.manager.vec_nodes(&self.state),
            seconds: self.elapsed,
            max_weight_bits: self.manager.max_weight_bits(&self.state),
            error,
        }
    }

    /// Runs the remaining circuit to completion.
    pub fn run(&mut self) -> SimResult {
        let mut trace = Trace::default();
        while self.step() {
            if self.options.record_trace {
                trace.points.push(self.sample(None));
            }
        }
        let final_nodes = self.nodes();
        trace.engine = Some(self.manager.statistics());
        SimResult {
            amplitudes: self.manager.amplitudes(&self.state.clone()),
            final_nodes,
            trace,
            statistics: self.manager.statistics(),
        }
    }

    /// Builds the unitary of the **entire remaining circuit** as a single
    /// operator DD by matrix–matrix multiplication — the other workhorse
    /// of DD-based design automation (synthesis and equivalence checking
    /// build whole-circuit matrices rather than evolving a state).
    ///
    /// Consumes the remaining operations (the cursor advances to the end).
    ///
    /// # Panics
    ///
    /// Panics if an operation is not representable in the weight system.
    pub fn build_unitary(&mut self) -> Edge<MatId> {
        let mut u = self.manager.identity();
        while let Some(op) = self.circuit.ops().get(self.cursor) {
            let start = Instant::now();
            let gate = self.operator_for(&op.clone());
            u = self.manager.mat_mul(&gate, &u);
            self.elapsed += start.elapsed().as_secs_f64();
            self.cursor += 1;
            if self.manager.allocated_nodes() > self.options.compact_threshold {
                let t = Instant::now();
                let (_, ms) = self.manager.compact(&[], &[u]);
                u = ms[0];
                self.gate_cache.clear();
                self.elapsed += t.elapsed().as_secs_f64();
            }
        }
        u
    }

    /// Builds (or fetches) the operator DD for one circuit operation.
    ///
    /// # Panics
    ///
    /// Panics if a gate entry is not representable in the weight system.
    fn operator_for(&mut self, op: &Op) -> Edge<MatId> {
        let key = match op {
            Op::Gate {
                matrix,
                target,
                controls,
            } => {
                let mut entries = [WeightId::ZERO; 4];
                for (i, e) in matrix.entries().iter().enumerate() {
                    let v = match e {
                        aq_dd::GateEntry::Exact(d) => self.manager.ctx().from_exact(d),
                        aq_dd::GateEntry::Approx(c) => {
                            self.manager.ctx().from_approx(*c).unwrap_or_else(|| {
                                panic!(
                                    "gate `{}` not representable; Clifford+T-compile first",
                                    matrix.name()
                                )
                            })
                        }
                    };
                    entries[i] = self.manager.intern(v);
                }
                GateKey::Gate {
                    entries,
                    target: *target,
                    controls: controls.clone(),
                }
            }
            Op::MatchingEvolution { pairs } => GateKey::Matching(Arc::as_ptr(pairs) as usize),
            Op::Permutation { map } => GateKey::Matching(Arc::as_ptr(map) as *const () as usize),
        };
        if let Some(&hit) = self.gate_cache.get(&key) {
            return hit;
        }
        let built = crate::operators::op_operator(&mut self.manager, op);
        self.gate_cache.insert(key, built);
        built
    }
}
