//! The circuit simulator: applies operations to a state DD and traces.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use aq_circuits::{Circuit, Op};
use aq_dd::fxhash::FxHashMap;
use aq_dd::{
    Edge, EngineError, EngineStatistics, Manager, MatId, RunBudget, VecId, WeightContext, WeightId,
};
use aq_rings::Complex64;

use crate::trace::{Trace, TracePoint};

/// Tuning knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Record a [`TracePoint`] after every operation (otherwise only the
    /// final state is kept).
    pub record_trace: bool,
    /// Compact the manager when its arena exceeds this many nodes.
    pub compact_threshold: usize,
    /// Slot count for the engine's compute caches (`None` = engine
    /// default). Smaller caches trade recomputation for memory; results
    /// are identical either way because the caches are lossy memoisation.
    pub cache_capacity: Option<usize>,
    /// Resource budget installed into the manager (unlimited by default).
    /// With a budget set, prefer the `try_*` entry points: the infallible
    /// ones panic when a limit is crossed.
    pub budget: RunBudget,
    /// When set, [`Simulator::try_run`] dumps a checkpoint to this path on
    /// a budget abort, so a later process can [`Simulator::resume`] the
    /// run instead of redoing it. [`SimAbort::checkpoint`] records whether
    /// the dump succeeded.
    pub checkpoint_on_abort: Option<PathBuf>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            record_trace: true,
            compact_threshold: 4_000_000,
            cache_capacity: None,
            budget: RunBudget::unlimited(),
            checkpoint_on_abort: None,
        }
    }
}

/// A structured simulation error: which operation failed, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Index of the circuit operation being applied when the engine
    /// failed (0-based).
    pub op_index: usize,
    /// The underlying engine error.
    pub source: EngineError,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {}: {}", self.op_index, self.source)
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A budget-aborted run: the reason plus everything that *did* happen.
///
/// Returned by [`Simulator::try_run`] so harnesses can report the partial
/// series (the paper's ε = 0 sweeps routinely exhaust memory budgets —
/// fail-soft beats fail-crash there).
#[derive(Debug)]
pub struct SimAbort {
    /// What stopped the run.
    pub error: SimError,
    /// The partial time series up to the abort (with
    /// [`Trace::aborted`] set to the rendered error).
    pub trace: Trace,
    /// Engine counters at the abort point.
    pub statistics: EngineStatistics,
    /// Operations successfully applied before the abort.
    pub gates_applied: usize,
    /// Path of the checkpoint written at the abort, when
    /// [`SimOptions::checkpoint_on_abort`] was set and the dump succeeded.
    pub checkpoint: Option<PathBuf>,
}

impl fmt::Display for SimAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aborted after {} gate(s): {}",
            self.gates_applied, self.error
        )
    }
}

impl std::error::Error for SimAbort {}

/// Result of a completed run.
#[derive(Debug)]
pub struct SimResult {
    /// Amplitudes of the final state (complex doubles).
    pub amplitudes: Vec<Complex64>,
    /// Nodes of the final state DD.
    pub final_nodes: usize,
    /// The time series (empty unless tracing was enabled).
    pub trace: Trace,
    /// Engine counters at the end of the run (cache hit rates, unique
    /// table loads, compactions).
    pub statistics: EngineStatistics,
}

impl SimResult {
    /// Measurement probabilities `|α_i|²`.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }
}

/// A stateful simulator over one weight system.
///
/// Operations are translated into decision-diagram operators once and
/// cached; walking the circuit is a sequence of matrix–vector products.
#[derive(Debug)]
pub struct Simulator<'c, W: WeightContext> {
    manager: Manager<W>,
    circuit: &'c Circuit,
    state: Edge<VecId>,
    cursor: usize,
    elapsed: f64,
    gate_cache: FxHashMap<GateKey, Edge<MatId>>,
    options: SimOptions,
}

/// Key of the per-simulator operator cache. The `Arc`-backed op kinds are
/// keyed by pointer identity *and* variant tag: a `MatchingEvolution` and
/// a `Permutation` can share an allocation address (or one can be freed
/// and the other allocated at the same address), so the raw pointer alone
/// would conflate two different operators.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GateKey {
    Gate {
        entries: [WeightId; 4],
        target: u32,
        controls: Vec<(u32, bool)>,
    },
    Matching(usize),    // Arc pointer identity of a MatchingEvolution
    Permutation(usize), // Arc pointer identity of a Permutation
}

impl<'c, W: WeightContext> Simulator<'c, W> {
    /// Creates a simulator for `circuit` starting from `|0…0⟩`.
    pub fn new(ctx: W, circuit: &'c Circuit) -> Self {
        Simulator::with_options(ctx, circuit, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    ///
    /// The budget is installed *after* the initial `|0…0⟩` state is built,
    /// so its wall-clock epoch starts at the first operation and even a
    /// zero deadline yields a structured abort rather than a panicking
    /// constructor.
    pub fn with_options(ctx: W, circuit: &'c Circuit, options: SimOptions) -> Self {
        let mut manager = match options.cache_capacity {
            Some(c) => Manager::with_cache_capacity(ctx, circuit.n_qubits(), c),
            None => Manager::new(ctx, circuit.n_qubits()),
        };
        // No budget is installed yet and index 0 is in range for every
        // register, so this cannot fail; the fallback is never reached.
        let state = manager.try_basis_state(0).unwrap_or(Edge::ZERO_VEC);
        manager.set_budget(options.budget);
        Simulator {
            manager,
            circuit,
            state,
            cursor: 0,
            elapsed: 0.0,
            gate_cache: FxHashMap::default(),
            options,
        }
    }

    /// Creates a simulator on top of an existing (freshly reset) manager,
    /// for worker sessions that reuse one manager's allocations across
    /// jobs via [`Manager::reset_session`].
    ///
    /// The construction sequence is identical to
    /// [`Simulator::with_options`] — build `|0…0⟩`, then install the
    /// budget — so a run on a reset manager is bit-identical to a cold
    /// one. `options.cache_capacity` is ignored: the manager's caches
    /// already exist with the capacity it was built with.
    ///
    /// # Panics
    ///
    /// Panics if the manager's qubit count differs from the circuit's.
    pub fn with_manager(
        mut manager: Manager<W>,
        circuit: &'c Circuit,
        options: SimOptions,
    ) -> Self {
        assert_eq!(
            manager.n_qubits(),
            circuit.n_qubits(),
            "manager qubit count must match the circuit"
        );
        // As in `with_options`: unbudgeted, index 0 always in range —
        // the zero-state fallback is unreachable.
        let state = manager.try_basis_state(0).unwrap_or(Edge::ZERO_VEC);
        manager.set_budget(options.budget);
        Simulator {
            manager,
            circuit,
            state,
            cursor: 0,
            elapsed: 0.0,
            gate_cache: FxHashMap::default(),
            options,
        }
    }

    /// Consumes the simulator, returning its manager so a session can
    /// park it for the next job.
    pub fn into_manager(self) -> Manager<W> {
        self.manager
    }

    /// Restarts from the basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed while building the state
    /// (e.g. an already-expired deadline); the previous state stays
    /// current and the cursor does not move.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn try_reset_to(&mut self, index: u64) -> Result<(), EngineError> {
        self.state = self.manager.try_basis_state(index)?;
        self.cursor = 0;
        self.elapsed = 0.0;
        Ok(())
    }

    /// Restarts from the basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range, or when a budget limit is
    /// crossed while building the state.
    pub fn reset_to(&mut self, index: u64) {
        self.try_reset_to(index).unwrap_or_else(|e| panic!("{e}"));
    }

    /// The underlying manager (for extraction helpers).
    pub fn manager(&self) -> &Manager<W> {
        &self.manager
    }

    /// Mutable access to the manager.
    pub fn manager_mut(&mut self) -> &mut Manager<W> {
        &mut self.manager
    }

    /// The current state edge.
    pub fn state(&self) -> Edge<VecId> {
        self.state
    }

    /// Operations applied so far.
    pub fn gates_applied(&self) -> usize {
        self.cursor
    }

    /// Cumulative DD-operation time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Whether the whole circuit has been applied.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.circuit.len()
    }

    /// Engine counters so far (caches, unique tables, compactions).
    pub fn statistics(&self) -> EngineStatistics {
        self.manager.statistics()
    }

    /// Applies the next operation. Returns `Ok(false)` when the circuit
    /// is exhausted.
    ///
    /// On an error the cursor does not advance and the pre-operation
    /// state stays valid — extraction helpers still work, which is how
    /// [`Simulator::try_run`] assembles its partial result.
    ///
    /// # Errors
    ///
    /// Fails if the operation is not representable in the weight system
    /// or a budget limit is crossed.
    pub fn try_step(&mut self) -> Result<bool, SimError> {
        let Some(op) = self.circuit.ops().get(self.cursor) else {
            return Ok(false);
        };
        let start = Instant::now();
        let result = (|| {
            let gate = self.try_operator_for(op)?;
            self.manager.try_mat_vec(&gate, &self.state)
        })();
        let state = match result {
            Ok(s) => s,
            Err(source) => {
                self.elapsed += start.elapsed().as_secs_f64();
                return Err(SimError {
                    op_index: self.cursor,
                    source,
                });
            }
        };
        self.state = state;
        self.elapsed += start.elapsed().as_secs_f64();
        self.cursor += 1;

        if self.manager.allocated_nodes() > self.options.compact_threshold {
            let t = Instant::now();
            // A failed compaction leaves the manager unchanged, so it is
            // not fatal: keep simulating uncompacted and let the budget
            // fire on the operation that actually exceeds it.
            if let Ok((vs, _)) = self.manager.try_compact(&[self.state], &[]) {
                self.state = vs[0];
                self.gate_cache.clear();
            }
            self.elapsed += t.elapsed().as_secs_f64();
        }
        Ok(true)
    }

    /// Like [`Simulator::try_step`] but panics on failure.
    ///
    /// # Panics
    ///
    /// Panics if an operation is not representable in the weight system
    /// (compile to Clifford+T first) or a budget limit is crossed.
    pub fn step(&mut self) -> bool {
        self.try_step().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Current state DD size.
    pub fn nodes(&self) -> usize {
        self.manager.vec_nodes(&self.state)
    }

    /// Samples a [`TracePoint`] for the current position.
    pub fn sample(&self, error: Option<f64>) -> TracePoint {
        TracePoint {
            gates_applied: self.cursor,
            nodes: self.manager.vec_nodes(&self.state),
            seconds: self.elapsed,
            max_weight_bits: self.manager.max_weight_bits(&self.state),
            error,
        }
    }

    /// Runs the remaining circuit to completion, fail-soft.
    ///
    /// # Errors
    ///
    /// On a budget abort (or an unrepresentable operation) returns a
    /// [`SimAbort`] carrying the structured error **and** the partial
    /// trace and engine statistics up to the failing operation.
    pub fn try_run(&mut self) -> Result<SimResult, Box<SimAbort>> {
        let mut trace = Trace::default();
        loop {
            match self.try_step() {
                Ok(true) => {
                    if self.options.record_trace {
                        trace.points.push(self.sample(None));
                    }
                }
                Ok(false) => break,
                Err(error) => {
                    let statistics = self.manager.statistics();
                    trace.engine = Some(statistics);
                    trace.aborted = Some(error.to_string());
                    // Dump a checkpoint so a later process can resume the
                    // run. A failed dump must not mask the abort itself —
                    // it only leaves `checkpoint` unset.
                    let checkpoint = self.options.checkpoint_on_abort.clone().and_then(|path| {
                        self.checkpoint_with_trace(&path, "try_run-abort", &trace)
                            .ok()
                            .map(|()| path)
                    });
                    return Err(Box::new(SimAbort {
                        error,
                        trace,
                        statistics,
                        gates_applied: self.cursor,
                        checkpoint,
                    }));
                }
            }
        }
        let final_nodes = self.nodes();
        trace.engine = Some(self.manager.statistics());
        Ok(SimResult {
            amplitudes: self.manager.amplitudes(&self.state.clone()),
            final_nodes,
            trace,
            statistics: self.manager.statistics(),
        })
    }

    /// Like [`Simulator::try_run`] but panics on failure.
    ///
    /// # Panics
    ///
    /// Panics if an operation is not representable in the weight system
    /// or a budget limit is crossed.
    pub fn run(&mut self) -> SimResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Writes a checkpoint of this simulator to `path`: the full manager
    /// (uncompacted, so a resumed run is bit-identical to an uninterrupted
    /// one), the current state, the cursor, and the accumulated DD time.
    ///
    /// `label` is free-form run identification; resume helpers match on it
    /// via [`peek_checkpoint`](crate::peek_checkpoint).
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotIo`] when the file cannot be written.
    pub fn checkpoint(&self, path: impl AsRef<Path>, label: &str) -> Result<(), EngineError> {
        self.checkpoint_with_trace(path, label, &Trace::default())
    }

    /// Like [`Simulator::checkpoint`], additionally persisting a partial
    /// [`Trace`] (points and abort reason) so a resumed run can extend the
    /// recorded series instead of losing the prefix.
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotIo`] when the file cannot be written.
    pub fn checkpoint_with_trace(
        &self,
        path: impl AsRef<Path>,
        label: &str,
        trace: &Trace,
    ) -> Result<(), EngineError> {
        let info = crate::checkpoint::CheckpointInfo {
            label: label.to_string(),
            n_qubits: self.circuit.n_qubits(),
            circuit_len: self.circuit.len() as u64,
            circuit_fingerprint: crate::checkpoint::circuit_fingerprint(self.circuit),
            gates_applied: self.cursor as u64,
            elapsed_seconds: self.elapsed,
        };
        let manager_bytes = self.manager.snapshot_to_bytes(&[self.state], &[]);
        let bytes = crate::checkpoint::encode_checkpoint(&info, trace, &manager_bytes);
        let path = path.as_ref();
        std::fs::write(path, bytes).map_err(|e| EngineError::SnapshotIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    /// Reconstructs a simulator from a checkpoint written by
    /// [`Simulator::checkpoint`], positioned at the stored cursor and
    /// ready to continue stepping. Returns the persisted partial
    /// [`Trace`] with its abort reason cleared (the abort is what is
    /// being resumed past).
    ///
    /// The stored manager snapshot is validated on load. The checkpoint's
    /// budget is **not** restored — `options.budget` is installed with a
    /// fresh wall-clock epoch, because a checkpoint typically exists
    /// precisely because the previous budget fired.
    ///
    /// # Errors
    ///
    /// Every snapshot-layer error, plus
    /// [`EngineError::SnapshotMismatch`] when `circuit` or `ctx` differ
    /// from what the checkpoint was taken with, and
    /// [`EngineError::SnapshotCorrupt`] if the stored cursor or state
    /// root is inconsistent.
    pub fn resume(
        ctx: W,
        circuit: &'c Circuit,
        path: impl AsRef<Path>,
        options: SimOptions,
    ) -> Result<(Self, Trace), EngineError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| EngineError::SnapshotIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let (info, mut trace, manager_bytes) = crate::checkpoint::decode_checkpoint(&bytes)?;
        crate::checkpoint::check_circuit_identity(&info, circuit)?;
        if info.gates_applied > info.circuit_len {
            return Err(EngineError::SnapshotCorrupt {
                section: "checkpoint info".into(),
                detail: format!(
                    "cursor {} past the end of the {}-op circuit",
                    info.gates_applied, info.circuit_len
                ),
            });
        }
        let (mut manager, vec_roots, _) = Manager::snapshot_from_bytes(ctx, &manager_bytes)?;
        let &[state] = vec_roots.as_slice() else {
            return Err(EngineError::SnapshotCorrupt {
                section: "checkpoint manager".into(),
                detail: format!("expected 1 state root, found {}", vec_roots.len()),
            });
        };
        manager.set_budget(options.budget);
        trace.aborted = None;
        Ok((
            Simulator {
                manager,
                circuit,
                state,
                cursor: info.gates_applied as usize,
                elapsed: info.elapsed_seconds,
                gate_cache: FxHashMap::default(),
                options,
            },
            trace,
        ))
    }

    /// Builds the unitary of the **entire remaining circuit** as a single
    /// operator DD by matrix–matrix multiplication — the other workhorse
    /// of DD-based design automation (synthesis and equivalence checking
    /// build whole-circuit matrices rather than evolving a state).
    ///
    /// Consumes the successfully applied operations (on an error the
    /// cursor stays at the failing operation).
    ///
    /// # Errors
    ///
    /// Fails if an operation is not representable in the weight system or
    /// a budget limit is crossed.
    pub fn try_build_unitary(&mut self) -> Result<Edge<MatId>, SimError> {
        let mut u = self.manager.try_identity().map_err(|source| SimError {
            op_index: self.cursor,
            source,
        })?;
        while let Some(op) = self.circuit.ops().get(self.cursor) {
            let start = Instant::now();
            let result = (|| {
                let gate = self.try_operator_for(&op.clone())?;
                self.manager.try_mat_mul(&gate, &u)
            })();
            self.elapsed += start.elapsed().as_secs_f64();
            u = result.map_err(|source| SimError {
                op_index: self.cursor,
                source,
            })?;
            self.cursor += 1;
            if self.manager.allocated_nodes() > self.options.compact_threshold {
                let t = Instant::now();
                if let Ok((_, ms)) = self.manager.try_compact(&[], &[u]) {
                    u = ms[0];
                    self.gate_cache.clear();
                }
                self.elapsed += t.elapsed().as_secs_f64();
            }
        }
        Ok(u)
    }

    /// Like [`Simulator::try_build_unitary`] but panics on failure.
    ///
    /// # Panics
    ///
    /// Panics if an operation is not representable in the weight system
    /// or a budget limit is crossed.
    pub fn build_unitary(&mut self) -> Edge<MatId> {
        self.try_build_unitary().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds (or fetches) the operator DD for one circuit operation.
    fn try_operator_for(&mut self, op: &Op) -> Result<Edge<MatId>, EngineError> {
        let key = match op {
            Op::Gate {
                matrix,
                target,
                controls,
            } => {
                let mut entries = [WeightId::ZERO; 4];
                for (i, e) in matrix.entries().iter().enumerate() {
                    let v = match e {
                        aq_dd::GateEntry::Exact(d) => self.manager.ctx().from_exact(d),
                        aq_dd::GateEntry::Approx(c) => {
                            self.manager.ctx().from_approx(*c).ok_or_else(|| {
                                EngineError::UnrepresentableGate {
                                    gate: matrix.name().to_string(),
                                }
                            })?
                        }
                    };
                    entries[i] = self.manager.try_intern(v)?;
                }
                GateKey::Gate {
                    entries,
                    target: *target,
                    controls: controls.clone(),
                }
            }
            Op::MatchingEvolution { pairs } => GateKey::Matching(Arc::as_ptr(pairs) as usize),
            Op::Permutation { map } => GateKey::Permutation(Arc::as_ptr(map) as *const () as usize),
            // Uncacheable by construction: the builder rejects these with
            // a structured error (the sampler handles them instead).
            Op::Measure { .. } | Op::Reset { .. } | Op::Conditional { .. } => {
                return crate::operators::try_op_operator(&mut self.manager, op);
            }
        };
        if let Some(&hit) = self.gate_cache.get(&key) {
            return Ok(hit);
        }
        let built = crate::operators::try_op_operator(&mut self.manager, op)?;
        self.gate_cache.insert(key, built);
        Ok(built)
    }
}
