//! Fail-soft sweep harness: one exact reference run shared across a whole
//! ε sweep, with budget aborts downgraded to partial traces.
//!
//! The paper's figures sweep a tolerance ε over the same circuit and
//! compare every numeric run against one exact algebraic reference. The
//! ε = 0 (and exact) entries are exactly the ones that blow up in nodes
//! and coefficient bits — so the harness runs everything through
//! [`Simulator::try_run`]-style stepping and records an abort as a
//! [`Trace`] with [`Trace::aborted`] set instead of crashing the sweep:
//! the remaining series still complete and the CSV/summary report an
//! explicit `aborted` row.

use std::collections::HashMap;
use std::path::Path;

use aq_circuits::Circuit;
use aq_dd::QomegaContext;
use aq_rings::Complex64;

use crate::accuracy::normalized_distance;
use crate::simulator::{SimOptions, Simulator};
use crate::trace::Trace;
use crate::WeightContext;

/// A completed (possibly aborted) exact reference simulation with its
/// per-sample amplitude vectors, shared across a whole ε sweep (running
/// the expensive algebraic simulation once instead of once per ε).
#[derive(Debug)]
pub struct ReferenceRun {
    /// The algebraic trace (sizes, runtime; [`Trace::aborted`] set if the
    /// reference itself hit a budget limit).
    pub trace: Trace,
    /// Exact amplitude vectors keyed by gates-applied count. Partial if
    /// the reference aborted — numeric runs then simply have no error
    /// samples past the abort point.
    pub samples: HashMap<usize, Vec<Complex64>>,
    sample_every: usize,
    start: u64,
}

impl ReferenceRun {
    /// The sampling interval the reference was taken with.
    pub fn sample_every(&self) -> usize {
        self.sample_every
    }

    /// The basis state the run started from.
    pub fn start(&self) -> u64 {
        self.start
    }
}

/// Runs the exact algebraic simulation once, keeping the amplitude
/// vectors at every sampling point (and at the end). Fail-soft: a budget
/// abort yields a partial reference (see [`ReferenceRun::samples`]).
///
/// # Panics
///
/// Panics if `sample_every` is zero or `start` is out of range.
pub fn reference_run(
    circuit: &Circuit,
    sample_every: usize,
    start: u64,
    options: &SimOptions,
) -> ReferenceRun {
    assert!(sample_every > 0, "sampling interval must be positive");
    let mut sim = Simulator::with_options(QomegaContext::new(), circuit, options.clone());
    let mut trace = Trace::default();
    let mut samples = HashMap::new();
    if let Err(e) = sim.try_reset_to(start) {
        // e.g. an already-expired deadline: abort before the first gate
        trace.aborted = Some(e.to_string());
        trace.engine = Some(sim.statistics());
        return ReferenceRun {
            trace,
            samples,
            sample_every,
            start,
        };
    }
    loop {
        match sim.try_step() {
            Ok(true) => {
                trace.points.push(sim.sample(None));
                let g = sim.gates_applied();
                if g.is_multiple_of(sample_every) || sim.is_done() {
                    let s = sim.state();
                    samples.insert(g, sim.manager_mut().amplitudes(&s));
                }
            }
            Ok(false) => break,
            Err(e) => {
                trace.aborted = Some(e.to_string());
                break;
            }
        }
    }
    trace.engine = Some(sim.statistics());
    record_validation(&mut trace, validate_stage(&sim, "reference_run"));
    ReferenceRun {
        trace,
        samples,
        sample_every,
        start,
    }
}

/// With the `validate-invariants` feature, every sweep stage re-checks the
/// manager's structural invariants before its trace is reported. A
/// violation is returned as a rendered
/// [`EngineError::InvariantViolation`](aq_dd::EngineError) rather than a
/// panic, so the stage is reported as an aborted row and the surrounding
/// sweep (or a serving worker) survives — the fail-soft contract.
#[cfg(feature = "validate-invariants")]
fn validate_stage<W: WeightContext>(sim: &Simulator<'_, W>, stage: &str) -> Option<String> {
    sim.manager()
        .validate()
        .err()
        .map(|e| format!("sweep stage `{stage}` broke the invariants: {e}"))
}

#[cfg(not(feature = "validate-invariants"))]
fn validate_stage<W: WeightContext>(_sim: &Simulator<'_, W>, _stage: &str) -> Option<String> {
    None
}

/// Folds an invariant-check failure into a trace's abort field, keeping
/// any earlier abort reason (budget aborts stay first; the violation is
/// appended, never lost).
fn record_validation(trace: &mut Trace, violation: Option<String>) {
    if let Some(v) = violation {
        trace.aborted = Some(match trace.aborted.take() {
            Some(prev) => format!("{prev}; {v}"),
            None => v,
        });
    }
}

/// Runs one numeric simulation, measuring the error against a shared
/// [`ReferenceRun`] at its sampling points. Fail-soft: on a budget abort
/// the returned [`Trace`] covers the prefix that ran and carries the
/// abort reason in [`Trace::aborted`].
pub fn numeric_vs_reference<W: WeightContext>(
    ctx: W,
    circuit: &Circuit,
    reference: &ReferenceRun,
    options: &SimOptions,
) -> Trace {
    numeric_vs_reference_resumable(ctx, circuit, reference, options, "", None, None)
}

/// [`numeric_vs_reference`] with crash-safe persistence: on a budget abort
/// the simulator state and the partial trace are checkpointed to
/// `checkpoint` (tagged with `label`), and a later call that passes the
/// same file as `resume` continues the run from the stored cursor instead
/// of replaying the prefix.
///
/// A `resume` file is only honoured when it exists, decodes, and its
/// stored label and circuit identity match — otherwise the run silently
/// starts from scratch, so a stale or foreign checkpoint can never
/// corrupt a sweep. The exact reference is *not* resumable (its sample
/// vectors are not persisted); callers recompute it, which is
/// deterministic, so resumed error measurements are unchanged.
#[allow(clippy::too_many_arguments)]
pub fn numeric_vs_reference_resumable<W: WeightContext>(
    ctx: W,
    circuit: &Circuit,
    reference: &ReferenceRun,
    options: &SimOptions,
    label: &str,
    checkpoint: Option<&Path>,
    resume: Option<&Path>,
) -> Trace {
    let resumed = resume.and_then(|path| {
        let info = crate::checkpoint::peek_checkpoint(path).ok()?;
        if info.label != label {
            return None;
        }
        Simulator::resume(ctx.clone(), circuit, path, options.clone()).ok()
    });
    let (mut sim, mut trace) = match resumed {
        Some((sim, trace)) => (sim, trace),
        None => {
            let mut sim = Simulator::with_options(ctx, circuit, options.clone());
            let mut trace = Trace::default();
            if let Err(e) = sim.try_reset_to(reference.start) {
                trace.aborted = Some(e.to_string());
                trace.engine = Some(sim.statistics());
                return trace;
            }
            (sim, trace)
        }
    };
    loop {
        match sim.try_step() {
            Ok(true) => {
                let g = sim.gates_applied();
                let error = if g.is_multiple_of(reference.sample_every) || sim.is_done() {
                    reference.samples.get(&g).map(|v_alg| {
                        let s = sim.state();
                        let v_num = sim.manager_mut().amplitudes(&s);
                        normalized_distance(&v_num, v_alg)
                    })
                } else {
                    None
                };
                trace.points.push(sim.sample(error));
            }
            Ok(false) => break,
            Err(e) => {
                trace.aborted = Some(e.to_string());
                if let Some(path) = checkpoint {
                    if let Err(ckpt_err) = sim.checkpoint_with_trace(path, label, &trace) {
                        eprintln!("warning: could not write checkpoint: {ckpt_err}");
                    }
                }
                break;
            }
        }
    }
    trace.engine = Some(sim.statistics());
    record_validation(&mut trace, validate_stage(&sim, label));
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::{NumericContext, RunBudget};

    #[test]
    fn reference_and_numeric_complete_without_budget() {
        let c = aq_circuits::grover(3, 2);
        let opts = SimOptions::default();
        let r = reference_run(&c, 4, 0, &opts);
        assert!(r.trace.aborted.is_none());
        assert_eq!(r.trace.points.len(), c.len());
        let t = numeric_vs_reference(NumericContext::with_eps(1e-12), &c, &r, &opts);
        assert!(t.aborted.is_none());
        assert_eq!(t.points.len(), c.len());
        assert!(t.final_error().is_some());
    }

    #[test]
    fn expired_deadline_aborts_before_the_first_gate() {
        // regression: the initial `reset_to` runs with the budget already
        // installed — an expired deadline must yield an aborted trace,
        // not a panic out of the basis-state constructor
        let c = aq_circuits::grover(3, 2);
        let opts = SimOptions {
            budget: RunBudget::unlimited().with_deadline(std::time::Duration::ZERO),
            ..SimOptions::default()
        };
        let r = reference_run(&c, 4, 0, &opts);
        let reason = r.trace.aborted.as_deref().expect("expired deadline");
        assert!(reason.contains("deadline exceeded"), "reason: {reason}");
        assert!(r.trace.points.is_empty());
        let t = numeric_vs_reference(NumericContext::with_eps(1e-12), &c, &r, &opts);
        assert!(t.aborted.is_some());
    }

    #[test]
    fn resumable_sweep_continues_from_its_checkpoint() {
        let c = aq_circuits::grover(4, 3);
        let opts = SimOptions::default();
        let reference = reference_run(&c, 4, 0, &opts);
        let full = numeric_vs_reference(NumericContext::with_eps(1e-10), &c, &reference, &opts);

        let path = std::env::temp_dir().join("aq_sweep_resume_test.aqckp");
        std::fs::remove_file(&path).ok();
        let tight = SimOptions {
            budget: RunBudget::unlimited().with_max_nodes(8),
            ..SimOptions::default()
        };
        let partial = numeric_vs_reference_resumable(
            NumericContext::with_eps(1e-10),
            &c,
            &reference,
            &tight,
            "test/eps1e-10",
            Some(&path),
            None,
        );
        assert!(partial.aborted.is_some(), "tight budget must abort");
        assert!(path.exists(), "abort must leave a checkpoint behind");

        // a checkpoint for a *different* stage is ignored, not misapplied
        let fresh = numeric_vs_reference_resumable(
            NumericContext::with_eps(1e-10),
            &c,
            &reference,
            &opts,
            "other-stage",
            None,
            Some(&path),
        );
        assert!(fresh.aborted.is_none());
        assert_eq!(fresh.points.len(), c.len());

        let resumed = numeric_vs_reference_resumable(
            NumericContext::with_eps(1e-10),
            &c,
            &reference,
            &opts,
            "test/eps1e-10",
            None,
            Some(&path),
        );
        assert!(resumed.aborted.is_none(), "resumed run completes");
        assert_eq!(resumed.points.len(), c.len());
        // identical to the uninterrupted run in everything but wall-clock
        for (a, b) in resumed.points.iter().zip(full.points.iter()) {
            assert_eq!(a.gates_applied, b.gates_applied);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.max_weight_bits, b.max_weight_bits);
            assert_eq!(a.error, b.error);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_abort_yields_partial_trace_not_panic() {
        let c = aq_circuits::grover(4, 3);
        let reference = reference_run(&c, 4, 0, &SimOptions::default());
        let tight = SimOptions {
            budget: RunBudget::unlimited().with_max_nodes(8),
            ..SimOptions::default()
        };
        let t = numeric_vs_reference(NumericContext::with_eps(0.0), &c, &reference, &tight);
        let reason = t.aborted.as_deref().expect("tight budget must abort");
        assert!(reason.contains("node budget"), "reason: {reason}");
        assert!(
            t.points.len() < c.len(),
            "aborted trace must be a strict prefix"
        );
        assert!(t.engine.is_some(), "statistics still recorded");
    }
}
