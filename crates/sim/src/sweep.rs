//! Fail-soft sweep harness: one exact reference run shared across a whole
//! ε sweep, with budget aborts downgraded to partial traces.
//!
//! The paper's figures sweep a tolerance ε over the same circuit and
//! compare every numeric run against one exact algebraic reference. The
//! ε = 0 (and exact) entries are exactly the ones that blow up in nodes
//! and coefficient bits — so the harness runs everything through
//! [`Simulator::try_run`]-style stepping and records an abort as a
//! [`Trace`] with [`Trace::aborted`] set instead of crashing the sweep:
//! the remaining series still complete and the CSV/summary report an
//! explicit `aborted` row.

use std::collections::HashMap;

use aq_circuits::Circuit;
use aq_dd::QomegaContext;
use aq_rings::Complex64;

use crate::accuracy::normalized_distance;
use crate::simulator::{SimOptions, Simulator};
use crate::trace::Trace;
use crate::WeightContext;

/// A completed (possibly aborted) exact reference simulation with its
/// per-sample amplitude vectors, shared across a whole ε sweep (running
/// the expensive algebraic simulation once instead of once per ε).
#[derive(Debug)]
pub struct ReferenceRun {
    /// The algebraic trace (sizes, runtime; [`Trace::aborted`] set if the
    /// reference itself hit a budget limit).
    pub trace: Trace,
    /// Exact amplitude vectors keyed by gates-applied count. Partial if
    /// the reference aborted — numeric runs then simply have no error
    /// samples past the abort point.
    pub samples: HashMap<usize, Vec<Complex64>>,
    sample_every: usize,
    start: u64,
}

impl ReferenceRun {
    /// The sampling interval the reference was taken with.
    pub fn sample_every(&self) -> usize {
        self.sample_every
    }

    /// The basis state the run started from.
    pub fn start(&self) -> u64 {
        self.start
    }
}

/// Runs the exact algebraic simulation once, keeping the amplitude
/// vectors at every sampling point (and at the end). Fail-soft: a budget
/// abort yields a partial reference (see [`ReferenceRun::samples`]).
///
/// # Panics
///
/// Panics if `sample_every` is zero or `start` is out of range.
pub fn reference_run(
    circuit: &Circuit,
    sample_every: usize,
    start: u64,
    options: &SimOptions,
) -> ReferenceRun {
    assert!(sample_every > 0, "sampling interval must be positive");
    let mut sim = Simulator::with_options(QomegaContext::new(), circuit, options.clone());
    let mut trace = Trace::default();
    let mut samples = HashMap::new();
    if let Err(e) = sim.try_reset_to(start) {
        // e.g. an already-expired deadline: abort before the first gate
        trace.aborted = Some(e.to_string());
        trace.engine = Some(sim.statistics());
        return ReferenceRun {
            trace,
            samples,
            sample_every,
            start,
        };
    }
    loop {
        match sim.try_step() {
            Ok(true) => {
                trace.points.push(sim.sample(None));
                let g = sim.gates_applied();
                if g.is_multiple_of(sample_every) || sim.is_done() {
                    let s = sim.state();
                    samples.insert(g, sim.manager_mut().amplitudes(&s));
                }
            }
            Ok(false) => break,
            Err(e) => {
                trace.aborted = Some(e.to_string());
                break;
            }
        }
    }
    trace.engine = Some(sim.statistics());
    ReferenceRun {
        trace,
        samples,
        sample_every,
        start,
    }
}

/// Runs one numeric simulation, measuring the error against a shared
/// [`ReferenceRun`] at its sampling points. Fail-soft: on a budget abort
/// the returned [`Trace`] covers the prefix that ran and carries the
/// abort reason in [`Trace::aborted`].
pub fn numeric_vs_reference<W: WeightContext>(
    ctx: W,
    circuit: &Circuit,
    reference: &ReferenceRun,
    options: &SimOptions,
) -> Trace {
    let mut sim = Simulator::with_options(ctx, circuit, options.clone());
    let mut trace = Trace::default();
    if let Err(e) = sim.try_reset_to(reference.start) {
        trace.aborted = Some(e.to_string());
        trace.engine = Some(sim.statistics());
        return trace;
    }
    loop {
        match sim.try_step() {
            Ok(true) => {
                let g = sim.gates_applied();
                let error = if g.is_multiple_of(reference.sample_every) || sim.is_done() {
                    reference.samples.get(&g).map(|v_alg| {
                        let s = sim.state();
                        let v_num = sim.manager_mut().amplitudes(&s);
                        normalized_distance(&v_num, v_alg)
                    })
                } else {
                    None
                };
                trace.points.push(sim.sample(error));
            }
            Ok(false) => break,
            Err(e) => {
                trace.aborted = Some(e.to_string());
                break;
            }
        }
    }
    trace.engine = Some(sim.statistics());
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::{NumericContext, RunBudget};

    #[test]
    fn reference_and_numeric_complete_without_budget() {
        let c = aq_circuits::grover(3, 2);
        let opts = SimOptions::default();
        let r = reference_run(&c, 4, 0, &opts);
        assert!(r.trace.aborted.is_none());
        assert_eq!(r.trace.points.len(), c.len());
        let t = numeric_vs_reference(NumericContext::with_eps(1e-12), &c, &r, &opts);
        assert!(t.aborted.is_none());
        assert_eq!(t.points.len(), c.len());
        assert!(t.final_error().is_some());
    }

    #[test]
    fn expired_deadline_aborts_before_the_first_gate() {
        // regression: the initial `reset_to` runs with the budget already
        // installed — an expired deadline must yield an aborted trace,
        // not a panic out of the basis-state constructor
        let c = aq_circuits::grover(3, 2);
        let opts = SimOptions {
            budget: RunBudget::unlimited().with_deadline(std::time::Duration::ZERO),
            ..SimOptions::default()
        };
        let r = reference_run(&c, 4, 0, &opts);
        let reason = r.trace.aborted.as_deref().expect("expired deadline");
        assert!(reason.contains("deadline exceeded"), "reason: {reason}");
        assert!(r.trace.points.is_empty());
        let t = numeric_vs_reference(NumericContext::with_eps(1e-12), &c, &r, &opts);
        assert!(t.aborted.is_some());
    }

    #[test]
    fn budget_abort_yields_partial_trace_not_panic() {
        let c = aq_circuits::grover(4, 3);
        let reference = reference_run(&c, 4, 0, &SimOptions::default());
        let tight = SimOptions {
            budget: RunBudget::unlimited().with_max_nodes(8),
            ..SimOptions::default()
        };
        let t = numeric_vs_reference(NumericContext::with_eps(0.0), &c, &reference, &tight);
        let reason = t.aborted.as_deref().expect("tight budget must abort");
        assert!(reason.contains("node budget"), "reason: {reason}");
        assert!(
            t.points.len() < c.len(),
            "aborted trace must be a strict prefix"
        );
        assert!(t.engine.is_some(), "statistics still recorded");
    }
}
