//! Translation of circuit operations into decision-diagram operators.

use aq_circuits::{Circuit, Op};
use aq_dd::{Edge, EngineError, Manager, MatId, WeightContext};
use aq_rings::{Domega, Zomega};

/// Builds the operator DD for a single circuit operation.
///
/// # Errors
///
/// Fails if a gate entry is not representable in the weight system
/// (compile to Clifford+T first) or when a budget limit is crossed.
pub fn try_op_operator<W: WeightContext>(
    m: &mut Manager<W>,
    op: &Op,
) -> Result<Edge<MatId>, EngineError> {
    match op {
        Op::Gate {
            matrix,
            target,
            controls,
        } => m.try_gate(matrix, *target, controls),
        Op::MatchingEvolution { pairs } => try_matching_evolution(m, pairs),
        Op::Permutation { map } => try_permutation(m, map),
        // Non-unitary operations have no operator DD at all — they belong
        // to the sampler (`crate::sample`), not the unitary pipeline.
        Op::Measure { .. } | Op::Reset { .. } | Op::Conditional { .. } => {
            Err(EngineError::UnrepresentableGate {
                gate: "non-unitary operation (measure/reset/conditional); use the shot sampler"
                    .into(),
            })
        }
    }
}

/// Like [`try_op_operator`] but panics on failure.
///
/// # Panics
///
/// Panics if a gate entry is not representable in the weight system
/// (compile to Clifford+T first) or when a budget limit is crossed.
pub fn op_operator<W: WeightContext>(m: &mut Manager<W>, op: &Op) -> Edge<MatId> {
    try_op_operator(m, op).unwrap_or_else(|e| panic!("{e}"))
}

/// Builds the unitary of a whole circuit by matrix–matrix multiplication
/// in the given manager — the operator-level design task (synthesis,
/// equivalence checking) of the paper's introduction.
///
/// # Errors
///
/// Fails if an operation is not representable in the weight system or
/// when a budget limit is crossed.
///
/// # Panics
///
/// Panics if the circuit width differs from the manager's.
pub fn try_circuit_unitary<W: WeightContext>(
    m: &mut Manager<W>,
    circuit: &Circuit,
) -> Result<Edge<MatId>, EngineError> {
    assert_eq!(
        m.n_qubits(),
        circuit.n_qubits(),
        "manager/circuit width mismatch"
    );
    let mut u = m.try_identity()?;
    for op in circuit.iter() {
        let g = try_op_operator(m, op)?;
        u = m.try_mat_mul(&g, &u)?;
    }
    Ok(u)
}

/// Like [`try_circuit_unitary`] but panics on failure.
///
/// # Panics
///
/// Panics if the circuit width differs from the manager's, or an
/// operation is not representable, or a budget limit is crossed.
pub fn circuit_unitary<W: WeightContext>(m: &mut Manager<W>, circuit: &Circuit) -> Edge<MatId> {
    try_circuit_unitary(m, circuit).unwrap_or_else(|e| panic!("{e}"))
}

/// `exp(−i·π/4·A_M) = I + (1/√2 − 1)·D_M − (i/√2)·P_M` where `D_M`
/// projects onto matched vertices and `P_M` swaps matched pairs. All
/// three constants are in `D[ω]`, so the operator is exact in every
/// weight system.
///
/// # Errors
///
/// Fails when a budget limit is crossed.
pub fn try_matching_evolution<W: WeightContext>(
    m: &mut Manager<W>,
    pairs: &[(u64, u64)],
) -> Result<Edge<MatId>, EngineError> {
    let w_diag = {
        let v = m
            .ctx()
            .from_exact(&(&Domega::one_over_sqrt2() - &Domega::one()));
        m.try_intern(v)?
    };
    let w_swap = {
        let minus_i_over_sqrt2 = Domega::new(-&Zomega::i(), 1);
        let v = m.ctx().from_exact(&minus_i_over_sqrt2);
        m.try_intern(v)?
    };

    let mut acc = m.try_identity()?;
    for &(a, b) in pairs {
        // diagonal depletion at a and b
        for v in [a, b] {
            let unit = m.try_unit_matrix(v, v)?;
            let scaled = m.try_mat_scale(&unit, w_diag)?;
            acc = m.try_mat_add(&acc, &scaled)?;
        }
        // off-diagonal coupling a↔b
        for (r, c) in [(a, b), (b, a)] {
            let unit = m.try_unit_matrix(r, c)?;
            let scaled = m.try_mat_scale(&unit, w_swap)?;
            acc = m.try_mat_add(&acc, &scaled)?;
        }
    }
    Ok(acc)
}

/// Like [`try_matching_evolution`] but panics on budget exhaustion.
///
/// # Panics
///
/// Panics when a budget limit is crossed.
pub fn matching_evolution<W: WeightContext>(
    m: &mut Manager<W>,
    pairs: &[(u64, u64)],
) -> Edge<MatId> {
    try_matching_evolution(m, pairs).unwrap_or_else(|e| panic!("{e}"))
}

/// The permutation operator `Σ_x |map[x]⟩⟨x|` as the identity plus
/// corrections on the moved points.
///
/// # Errors
///
/// Fails when a budget limit is crossed.
pub fn try_permutation<W: WeightContext>(
    m: &mut Manager<W>,
    map: &[u64],
) -> Result<Edge<MatId>, EngineError> {
    let neg_one = {
        let v = m.ctx().from_exact(&-Domega::one());
        m.try_intern(v)?
    };
    let mut acc = m.try_identity()?;
    for (x, &y) in map.iter().enumerate() {
        let x = x as u64;
        if x == y {
            continue;
        }
        let remove = m.try_unit_matrix(x, x)?;
        let remove = m.try_mat_scale(&remove, neg_one)?;
        acc = m.try_mat_add(&acc, &remove)?;
        let add = m.try_unit_matrix(y, x)?;
        acc = m.try_mat_add(&acc, &add)?;
    }
    Ok(acc)
}

/// Like [`try_permutation`] but panics on budget exhaustion.
///
/// # Panics
///
/// Panics when a budget limit is crossed.
pub fn permutation<W: WeightContext>(m: &mut Manager<W>, map: &[u64]) -> Edge<MatId> {
    try_permutation(m, map).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::QomegaContext;

    #[test]
    fn permutation_operator_is_a_permutation_matrix() {
        let mut m = Manager::new(QomegaContext::new(), 2);
        let p = permutation(&mut m, &[2, 0, 3, 1]);
        let mat = m.matrix(&p);
        for (x, &y) in [2usize, 0, 3, 1].iter().enumerate() {
            for (r, row) in mat.iter().enumerate() {
                let want = if r == y { 1.0 } else { 0.0 };
                assert!((row[x].re - want).abs() < 1e-12, "entry ({r},{x})");
                assert!(row[x].im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matching_evolution_blocks() {
        let mut m = Manager::new(QomegaContext::new(), 2);
        let e = matching_evolution(&mut m, &[(0, 3)]);
        let mat = m.matrix(&e);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        // matched pair (0,3): 2×2 rotation block
        assert!((mat[0][0].re - s).abs() < 1e-12);
        assert!((mat[0][3].im + s).abs() < 1e-12);
        assert!((mat[3][0].im + s).abs() < 1e-12);
        assert!((mat[3][3].re - s).abs() < 1e-12);
        // unmatched vertices 1, 2: identity
        assert!((mat[1][1].re - 1.0).abs() < 1e-12);
        assert!((mat[2][2].re - 1.0).abs() < 1e-12);
        assert!(mat[1][2].abs() < 1e-12);
    }

    #[test]
    fn circuit_unitary_matches_stepwise_simulation() {
        let circuit = aq_circuits::grover(4, 9);
        let mut m = Manager::new(QomegaContext::new(), 4);
        let u = circuit_unitary(&mut m, &circuit);
        let z = m.basis_state(0);
        let via_matrix = m.mat_vec(&u, &z);

        let mut sim = crate::Simulator::new(QomegaContext::new(), &circuit);
        let via_steps = sim.run().amplitudes;
        let got = m.amplitudes(&via_matrix);
        for (a, b) in got.iter().zip(&via_steps) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
