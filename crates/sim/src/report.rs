//! CSV emission for the figure-regeneration harness.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One column of a CSV report: a header plus row values (rows may be
/// shorter than the longest column; missing cells stay empty).
#[derive(Debug, Clone)]
pub struct Column {
    /// Header label.
    pub name: String,
    /// Cell values, already formatted.
    pub values: Vec<String>,
}

impl Column {
    /// A column of floats with compact formatting.
    pub fn from_f64(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        Column {
            name: name.into(),
            values: values.into_iter().map(|v| format!("{v:.6e}")).collect(),
        }
    }

    /// A column of integers.
    pub fn from_usize(name: impl Into<String>, values: impl IntoIterator<Item = usize>) -> Self {
        Column {
            name: name.into(),
            values: values.into_iter().map(|v| v.to_string()).collect(),
        }
    }

    /// A column of optional floats (empty cells for `None`).
    pub fn from_opt_f64(
        name: impl Into<String>,
        values: impl IntoIterator<Item = Option<f64>>,
    ) -> Self {
        Column {
            name: name.into(),
            values: values
                .into_iter()
                .map(|v| v.map(|x| format!("{x:.6e}")).unwrap_or_default())
                .collect(),
        }
    }
}

/// Writes columns as CSV to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_csv(path: impl AsRef<Path>, columns: &[Column]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let rows = columns.iter().map(|c| c.values.len()).max().unwrap_or(0);
    let mut out = String::new();
    let headers: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
    let _ = writeln!(out, "{}", headers.join(","));
    for r in 0..rows {
        let row: Vec<&str> = columns
            .iter()
            .map(|c| c.values.get(r).map(String::as_str).unwrap_or(""))
            .collect();
        let _ = writeln!(out, "{}", row.join(","));
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("aq_sim_report_test");
        let path = dir.join("t.csv");
        let cols = vec![
            Column::from_usize("gates", [1, 2, 3]),
            Column::from_f64("err", [0.5, 0.25]),
            Column::from_opt_f64("maybe", [None, Some(1.0), None]),
        ];
        write_csv(&path, &cols).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "gates,err,maybe");
        assert_eq!(lines[1], "1,5.000000e-1,");
        assert_eq!(lines[2], "2,2.500000e-1,1.000000e0");
        assert_eq!(lines[3], "3,,");
        std::fs::remove_dir_all(&dir).ok();
    }
}
