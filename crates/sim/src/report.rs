//! CSV emission for the figure-regeneration harness.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One column of a CSV report: a header plus row values (rows may be
/// shorter than the longest column; missing cells stay empty).
#[derive(Debug, Clone)]
pub struct Column {
    /// Header label.
    pub name: String,
    /// Cell values, already formatted.
    pub values: Vec<String>,
}

impl Column {
    /// A column of floats with compact formatting.
    pub fn from_f64(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        Column {
            name: name.into(),
            values: values.into_iter().map(|v| format!("{v:.6e}")).collect(),
        }
    }

    /// A column of integers.
    pub fn from_usize(name: impl Into<String>, values: impl IntoIterator<Item = usize>) -> Self {
        Column {
            name: name.into(),
            values: values.into_iter().map(|v| v.to_string()).collect(),
        }
    }

    /// A column of optional floats (empty cells for `None`).
    pub fn from_opt_f64(
        name: impl Into<String>,
        values: impl IntoIterator<Item = Option<f64>>,
    ) -> Self {
        Column {
            name: name.into(),
            values: values
                .into_iter()
                .map(|v| v.map(|x| format!("{x:.6e}")).unwrap_or_default())
                .collect(),
        }
    }
}

/// Quotes a CSV field when it contains a delimiter, a quote, or a line
/// break (RFC 4180): the field is wrapped in double quotes and embedded
/// quotes are doubled. Plain fields pass through unchanged, so existing
/// numeric CSVs are byte-identical.
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

/// Writes columns as CSV to `path`, creating parent directories. Fields
/// (headers and cells) containing commas, quotes or newlines are quoted
/// and escaped, so free-form labels — abort reasons, sweep stage names —
/// cannot corrupt the row structure.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_csv(path: impl AsRef<Path>, columns: &[Column]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let rows = columns.iter().map(|c| c.values.len()).max().unwrap_or(0);
    let mut out = String::new();
    let headers: Vec<_> = columns.iter().map(|c| csv_field(&c.name)).collect();
    let _ = writeln!(out, "{}", headers.join(","));
    for r in 0..rows {
        let row: Vec<_> = columns
            .iter()
            .map(|c| csv_field(c.values.get(r).map(String::as_str).unwrap_or("")))
            .collect();
        let _ = writeln!(out, "{}", row.join(","));
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("aq_sim_report_test");
        let path = dir.join("t.csv");
        let cols = vec![
            Column::from_usize("gates", [1, 2, 3]),
            Column::from_f64("err", [0.5, 0.25]),
            Column::from_opt_f64("maybe", [None, Some(1.0), None]),
        ];
        write_csv(&path, &cols).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "gates,err,maybe");
        assert_eq!(lines[1], "1,5.000000e-1,");
        assert_eq!(lines[2], "2,2.500000e-1,1.000000e0");
        assert_eq!(lines[3], "3,,");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fields_with_commas_and_quotes_are_escaped() {
        // regression: abort reasons like `op 3: node budget exceeded
        // (1000, limit 8)` and labels with quotes used to be written raw,
        // corrupting the row structure for downstream parsers
        let dir = std::env::temp_dir().join("aq_sim_report_quote_test");
        let path = dir.join("q.csv");
        let cols = vec![
            Column {
                name: "series, or \"label\"".into(),
                values: vec!["plain".into(), "a,b".into(), "say \"hi\"\nbye".into()],
            },
            Column::from_usize("n", [1, 2, 3]),
        ];
        write_csv(&path, &cols).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "\"series, or \"\"label\"\"\",n");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"a,b\",2");
        // the embedded newline keeps the quoted field open across lines
        assert_eq!(lines[3], "\"say \"\"hi\"\"");
        assert_eq!(lines[4], "bye\",3");
        std::fs::remove_dir_all(&dir).ok();
    }
}
