//! Per-gate measurement records.

use aq_dd::EngineStatistics;

/// One sample of the evolving simulation, taken after applying a gate.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Number of operations applied so far (1-based after the first gate).
    pub gates_applied: usize,
    /// Decision-diagram nodes of the evolved state.
    pub nodes: usize,
    /// Cumulative DD-operation time in seconds (excludes instrumentation).
    pub seconds: f64,
    /// Largest weight bit-width in the state DD (1 for floats).
    pub max_weight_bits: u64,
    /// Accuracy sample: Euclidean distance to the exact reference
    /// (only present in paired runs at sampling points).
    pub error: Option<f64>,
}

/// The full time series of a simulation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Samples in gate order.
    pub points: Vec<TracePoint>,
    /// Engine counters at the end of the run, when the harness recorded
    /// them (cache hit rates, unique-table load, compactions).
    pub engine: Option<EngineStatistics>,
    /// Why the run stopped early, if it did: the rendered
    /// [`EngineError`](aq_dd::EngineError) of a budget abort. `None` for
    /// runs that completed. The recorded points cover the prefix that did
    /// run — a partial trace, not a discarded one.
    pub aborted: Option<String>,
}

impl Trace {
    /// Peak node count over the run.
    pub fn peak_nodes(&self) -> usize {
        self.points.iter().map(|p| p.nodes).max().unwrap_or(0)
    }

    /// Final cumulative runtime in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.points.last().map(|p| p.seconds).unwrap_or(0.0)
    }

    /// Largest observed error sample, if any were taken.
    pub fn max_error(&self) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| p.error)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Final error sample, if any.
    pub fn final_error(&self) -> Option<f64> {
        self.points.iter().rev().find_map(|p| p.error)
    }

    /// Largest weight bit-width seen over the run.
    pub fn peak_weight_bits(&self) -> u64 {
        self.points
            .iter()
            .map(|p| p.max_weight_bits)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(g: usize, n: usize, s: f64, e: Option<f64>) -> TracePoint {
        TracePoint {
            gates_applied: g,
            nodes: n,
            seconds: s,
            max_weight_bits: 53,
            error: e,
        }
    }

    #[test]
    fn aggregates() {
        let t = Trace {
            points: vec![
                pt(1, 5, 0.1, None),
                pt(2, 9, 0.2, Some(1e-3)),
                pt(3, 7, 0.3, Some(2e-4)),
            ],
            ..Trace::default()
        };
        assert_eq!(t.peak_nodes(), 9);
        assert_eq!(t.total_seconds(), 0.3);
        assert_eq!(t.max_error(), Some(1e-3));
        assert_eq!(t.final_error(), Some(2e-4));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.peak_nodes(), 0);
        assert_eq!(t.total_seconds(), 0.0);
        assert_eq!(t.max_error(), None);
    }
}
