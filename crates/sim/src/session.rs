//! Persistent per-worker engine sessions.
//!
//! Cold-starting a [`Manager`] for every job throws away exactly the
//! allocations that make decision-diagram packages fast: grown unique
//! tables, compute-cache slot arrays and node arenas. An [`EngineSession`]
//! parks one manager per weight-scheme kind between jobs and recycles it
//! with [`Manager::reset_session`], so repeat jobs skip the allocation and
//! growth-rehash cost entirely.
//!
//! The recycling is **sound by construction**: a reset replaces the weight
//! table wholesale (ε-interning is path-dependent on table contents) and
//! empties every node/cache structure, so a warm run is bit-identical to a
//! cold one — the session is a performance lever, never a semantic one.
//! Per-job [`JobOutcome::statistics`] stay pure because the reset also
//! zeroes all counters.
//!
//! Retention is budget-aware: after a job whose manager grew past
//! [`SessionConfig::max_retained_capacity`] slots, the manager is dropped
//! instead of parked, returning the memory of an unusually large job
//! rather than pinning it for the session's lifetime.

use std::sync::atomic::AtomicBool;

use aq_dd::{GcdContext, Manager, NormScheme, NumericContext, QomegaContext, WeightContext};

use crate::job::{run_job, run_with_manager, JobOutcome, JobSpec, SchemeSpec};

/// Tuning for an [`EngineSession`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Retention budget in arena/unique-table slots (see
    /// [`Manager::retained_capacity`]): a manager above this after a job
    /// is dropped instead of parked for reuse.
    pub max_retained_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_retained_capacity: 8_000_000,
        }
    }
}

/// Counters describing how a session recycled its managers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Jobs run through the session (including resume jobs, which bypass
    /// the parked managers).
    pub jobs: u64,
    /// Jobs that reused a parked manager instead of building a cold one.
    pub warm_reuses: u64,
    /// Managers dropped after a job because their retained capacity
    /// exceeded the budget.
    pub shrinks: u64,
}

/// A long-lived engine context for one worker: at most one parked
/// [`Manager`] per weight-scheme kind, recycled across jobs.
///
/// Numeric managers are parked separately per session — not per ε — which
/// is safe because a reset installs the job's own context and a fresh
/// weight table; the parked manager only contributes its allocations.
#[derive(Debug, Default)]
pub struct EngineSession {
    cfg: SessionConfig,
    numeric: Option<Manager<NumericContext>>,
    qomega: Option<Manager<QomegaContext>>,
    gcd: Option<Manager<GcdContext>>,
    stats: SessionStats,
}

impl EngineSession {
    /// Creates an empty session.
    pub fn new(cfg: SessionConfig) -> Self {
        EngineSession {
            cfg,
            ..EngineSession::default()
        }
    }

    /// Recycling counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Runs one job, reusing this session's parked manager for the job's
    /// scheme kind when one is available. Semantics are identical to
    /// [`run_job`] — same outcomes, same per-job statistics (up to
    /// unique-table capacity gauges, which may be inherited larger).
    ///
    /// Resume jobs reconstruct their manager from the checkpoint and
    /// therefore bypass (and do not disturb) the parked managers. If a
    /// job panics out of this call, the scheme slot is simply left empty
    /// and the next job starts cold.
    pub fn run(&mut self, spec: &JobSpec<'_>, cancel: Option<&AtomicBool>) -> JobOutcome {
        self.stats.jobs += 1;
        if spec.resume.is_some() {
            return run_job(spec, cancel);
        }
        match &spec.scheme {
            SchemeSpec::Numeric { eps } => {
                let ctx = NumericContext::with_eps_and_scheme(*eps, NormScheme::MaxMagnitude);
                run_in_slot(
                    &mut self.numeric,
                    ctx,
                    spec,
                    cancel,
                    &mut self.stats,
                    &self.cfg,
                )
            }
            SchemeSpec::Qomega => run_in_slot(
                &mut self.qomega,
                QomegaContext::new(),
                spec,
                cancel,
                &mut self.stats,
                &self.cfg,
            ),
            SchemeSpec::Gcd => run_in_slot(
                &mut self.gcd,
                GcdContext::new(),
                spec,
                cancel,
                &mut self.stats,
                &self.cfg,
            ),
        }
    }
}

/// Takes the slot's manager (or builds a cold one honouring the job's
/// cache-capacity option), runs the job, and parks the manager again when
/// it fits the retention budget.
fn run_in_slot<W: WeightContext>(
    slot: &mut Option<Manager<W>>,
    ctx: W,
    spec: &JobSpec<'_>,
    cancel: Option<&AtomicBool>,
    stats: &mut SessionStats,
    cfg: &SessionConfig,
) -> JobOutcome {
    let n_qubits = spec.circuit.n_qubits();
    let manager = match slot.take() {
        Some(mut m) => {
            stats.warm_reuses += 1;
            m.reset_session(ctx, n_qubits);
            m
        }
        None => match spec.options.cache_capacity {
            Some(c) => Manager::with_cache_capacity(ctx, n_qubits, c),
            None => Manager::new(ctx, n_qubits),
        },
    };
    let (outcome, manager) = run_with_manager(manager, spec, cancel);
    if manager.retained_capacity() <= cfg.max_retained_capacity {
        *slot = Some(manager);
    } else {
        stats.shrinks += 1;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-identical equality of the fields a client observes.
    fn assert_outcomes_identical(a: &JobOutcome, b: &JobOutcome) {
        assert_eq!(a.gates_applied, b.gates_applied);
        assert_eq!(a.final_nodes, b.final_nodes);
        assert_eq!(a.top_probabilities.len(), b.top_probabilities.len());
        for ((ia, pa), (ib, pb)) in a.top_probabilities.iter().zip(&b.top_probabilities) {
            assert_eq!(ia, ib);
            assert_eq!(pa.to_bits(), pb.to_bits(), "probability bits diverged");
        }
        assert_eq!(a.aborted, b.aborted);
    }

    #[test]
    fn warm_session_runs_are_bit_identical_to_cold() {
        let c = aq_circuits::grover(5, 19);
        for scheme in [
            SchemeSpec::Numeric { eps: 1e-10 },
            SchemeSpec::Qomega,
            SchemeSpec::Gcd,
        ] {
            let cold = run_job(&JobSpec::new(&c, 0, scheme.clone()), None);
            let mut session = EngineSession::new(SessionConfig::default());
            let first = session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
            let second = session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
            assert_outcomes_identical(&cold, &first);
            assert_outcomes_identical(&cold, &second);
            assert_eq!(session.stats().jobs, 2);
            assert_eq!(session.stats().warm_reuses, 1, "second run must be warm");
            assert_eq!(session.stats().shrinks, 0);
        }
    }

    #[test]
    fn session_parks_one_manager_per_scheme_kind() {
        let c = aq_circuits::grover(4, 7);
        let mut session = EngineSession::new(SessionConfig::default());
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Gcd), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Gcd), None);
        let s = session.stats();
        assert_eq!(s.jobs, 4);
        assert_eq!(s.warm_reuses, 2, "each scheme kind warms independently");
    }

    #[test]
    fn retention_budget_drops_oversized_managers() {
        let c = aq_circuits::grover(5, 3);
        let mut session = EngineSession::new(SessionConfig {
            max_retained_capacity: 1,
        });
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        let s = session.stats();
        assert_eq!(s.warm_reuses, 0, "nothing fits a 1-slot budget");
        assert_eq!(s.shrinks, 2);
    }

    #[test]
    fn numeric_eps_changes_between_warm_jobs_take_effect() {
        // The parked manager contributes allocations only: a different ε
        // on the next job must behave exactly as it would cold.
        let c = aq_circuits::grover(4, 11);
        let mut session = EngineSession::new(SessionConfig::default());
        let loose_warmup =
            session.run(&JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.3 }), None);
        let exact_warm = session.run(&JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.0 }), None);
        let exact_cold = run_job(&JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.0 }), None);
        assert_outcomes_identical(&exact_warm, &exact_cold);
        assert_eq!(session.stats().warm_reuses, 1);
        // sanity: the loose run really did something different
        assert!(loose_warmup.is_completed());
    }
}
