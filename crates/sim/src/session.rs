//! Persistent per-worker engine sessions with quarantine-aware recycling.
//!
//! Cold-starting a [`Manager`] for every job throws away exactly the
//! allocations that make decision-diagram packages fast: grown unique
//! tables, compute-cache slot arrays and node arenas. An [`EngineSession`]
//! parks one manager per weight-scheme kind between jobs and recycles it
//! with [`Manager::reset_session`], so repeat jobs skip the allocation and
//! growth-rehash cost entirely.
//!
//! The recycling is **sound by construction**: a reset replaces the weight
//! table wholesale (ε-interning is path-dependent on table contents) and
//! empties every node/cache structure, so a warm run is bit-identical to a
//! cold one — the session is a performance lever, never a semantic one.
//! Per-job [`JobOutcome::statistics`] stay pure because the reset also
//! zeroes all counters.
//!
//! # Quarantine
//!
//! A warm manager is only trustworthy if its last job exited cleanly. Any
//! abort (budget, deadline, cancellation) marks the parked manager
//! **suspect**: before its next warm reuse the session runs the full
//! structural invariant checker via [`Manager::validated_reset_session`]
//! and only reuses the allocation if the retained state validates. A
//! validation failure — or a job panic reported through
//! [`EngineSession::note_panic`] — quarantines the lane: the manager is
//! dropped and the next job builds cold. With
//! [`SessionConfig::suspect_validate`] disabled the session skips the
//! checker and quarantines suspect managers unconditionally (strictly more
//! conservative, never less). All transitions surface in [`SessionStats`].
//!
//! Retention is budget-aware: after a job whose manager grew past
//! [`SessionConfig::max_retained_capacity`] slots, the manager is dropped
//! instead of parked, returning the memory of an unusually large job
//! rather than pinning it for the session's lifetime.

use std::sync::atomic::AtomicBool;

use aq_dd::{GcdContext, Manager, NormScheme, NumericContext, QomegaContext, WeightContext};

use crate::job::{run_job, run_with_manager, JobOutcome, JobSpec, SchemeSpec};

/// Tuning for an [`EngineSession`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Retention budget in arena/unique-table slots (see
    /// [`Manager::retained_capacity`]): a manager above this after a job
    /// is dropped instead of parked for reuse.
    pub max_retained_capacity: usize,
    /// Run [`Manager::validate`] on a suspect parked manager before warm
    /// reuse (on by default). When off, suspect managers are quarantined
    /// without inspection and the next job always builds cold.
    pub suspect_validate: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_retained_capacity: 8_000_000,
            suspect_validate: true,
        }
    }
}

/// Counters describing how a session recycled its managers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Jobs run through the session (including resume jobs, which bypass
    /// the parked managers).
    pub jobs: u64,
    /// Jobs that reused a parked manager instead of building a cold one.
    pub warm_reuses: u64,
    /// Managers dropped after a job because their retained capacity
    /// exceeded the budget.
    pub shrinks: u64,
    /// Managers dropped because their last job exited suspect (panic,
    /// abort without validation, or a failed suspect validation).
    pub quarantines: u64,
    /// Suspect managers that passed pre-reuse validation and were reused.
    pub validations: u64,
    /// Suspect managers whose retained state failed validation (each one
    /// also counts a quarantine).
    pub validate_failures: u64,
    /// Cold manager builds that replaced a quarantined one.
    pub rebuilds: u64,
}

/// One scheme kind's parked manager plus its quarantine state.
#[derive(Debug)]
struct Lane<W: WeightContext> {
    parked: Option<Manager<W>>,
    /// The parked manager's last job aborted; validate before reuse.
    suspect: bool,
    /// The previous manager was quarantined; the next cold build counts
    /// as a rebuild.
    rebuild_pending: bool,
}

// Hand-written so `EngineSession: Default` does not demand `W: Default`
// from the weight contexts (a derive would add that spurious bound).
impl<W: WeightContext> Default for Lane<W> {
    fn default() -> Self {
        Lane {
            parked: None,
            suspect: false,
            rebuild_pending: false,
        }
    }
}

/// A long-lived engine context for one worker: at most one parked
/// [`Manager`] per weight-scheme kind, recycled across jobs.
///
/// Numeric managers are parked separately per session — not per ε — which
/// is safe because a reset installs the job's own context and a fresh
/// weight table; the parked manager only contributes its allocations.
#[derive(Debug, Default)]
pub struct EngineSession {
    cfg: SessionConfig,
    numeric: Lane<NumericContext>,
    qomega: Lane<QomegaContext>,
    gcd: Lane<GcdContext>,
    stats: SessionStats,
}

impl EngineSession {
    /// Creates an empty session.
    pub fn new(cfg: SessionConfig) -> Self {
        EngineSession {
            cfg,
            ..EngineSession::default()
        }
    }

    /// Recycling counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Runs one job, reusing this session's parked manager for the job's
    /// scheme kind when one is available and trustworthy. Semantics are
    /// identical to [`run_job`] — same outcomes, same per-job statistics
    /// (up to unique-table capacity gauges, which may be inherited larger).
    ///
    /// Resume jobs reconstruct their manager from the checkpoint and
    /// therefore bypass (and do not disturb) the parked managers. If a
    /// job panics out of this call, the scheme lane is left empty; the
    /// caller should report the panic with [`EngineSession::note_panic`]
    /// so the quarantine is counted.
    pub fn run(&mut self, spec: &JobSpec<'_>, cancel: Option<&AtomicBool>) -> JobOutcome {
        self.stats.jobs += 1;
        if spec.resume.is_some() {
            return run_job(spec, cancel);
        }
        match &spec.scheme {
            SchemeSpec::Numeric { eps } => {
                let ctx = NumericContext::with_eps_and_scheme(*eps, NormScheme::MaxMagnitude);
                run_in_lane(
                    &mut self.numeric,
                    ctx,
                    spec,
                    cancel,
                    &mut self.stats,
                    &self.cfg,
                )
            }
            SchemeSpec::Qomega => run_in_lane(
                &mut self.qomega,
                QomegaContext::new(),
                spec,
                cancel,
                &mut self.stats,
                &self.cfg,
            ),
            SchemeSpec::Gcd => run_in_lane(
                &mut self.gcd,
                GcdContext::new(),
                spec,
                cancel,
                &mut self.stats,
                &self.cfg,
            ),
        }
    }

    /// Records that a job for `scheme` panicked out of
    /// [`EngineSession::run`]. The lane's manager (already consumed by the
    /// unwound call, or stale if somehow still parked) is quarantined: the
    /// slot is emptied and the next job for this scheme kind builds cold.
    pub fn note_panic(&mut self, scheme: &SchemeSpec) {
        let (emptied, rebuild_pending) = match scheme {
            SchemeSpec::Numeric { .. } => {
                self.numeric.parked = None;
                self.numeric.suspect = false;
                (true, &mut self.numeric.rebuild_pending)
            }
            SchemeSpec::Qomega => {
                self.qomega.parked = None;
                self.qomega.suspect = false;
                (true, &mut self.qomega.rebuild_pending)
            }
            SchemeSpec::Gcd => {
                self.gcd.parked = None;
                self.gcd.suspect = false;
                (true, &mut self.gcd.rebuild_pending)
            }
        };
        if emptied {
            *rebuild_pending = true;
            self.stats.quarantines += 1;
        }
    }

    /// Deterministically corrupts the parked manager for `scheme` (if any)
    /// and marks it suspect, as if a faulty job had damaged its retained
    /// state. Returns `true` if a corruption was planted. Chaos-test
    /// machinery: the next [`EngineSession::run`] for this scheme must
    /// catch the damage via suspect validation and rebuild cold.
    #[cfg(feature = "chaos")]
    pub fn chaos_corrupt_parked(&mut self, scheme: &SchemeSpec, seed: u64) -> bool {
        fn corrupt<W: WeightContext>(lane: &mut Lane<W>, seed: u64) -> bool {
            if let Some(m) = lane.parked.as_mut() {
                if m.chaos_corrupt(seed) {
                    lane.suspect = true;
                    return true;
                }
            }
            false
        }
        match scheme {
            SchemeSpec::Numeric { .. } => corrupt(&mut self.numeric, seed),
            SchemeSpec::Qomega => corrupt(&mut self.qomega, seed),
            SchemeSpec::Gcd => corrupt(&mut self.gcd, seed),
        }
    }
}

/// Takes the lane's manager (validating first when it is suspect), runs
/// the job, and parks the manager again when it fits the retention budget
/// — marking it suspect if the job aborted.
fn run_in_lane<W: WeightContext>(
    lane: &mut Lane<W>,
    ctx: W,
    spec: &JobSpec<'_>,
    cancel: Option<&AtomicBool>,
    stats: &mut SessionStats,
    cfg: &SessionConfig,
) -> JobOutcome {
    let n_qubits = spec.circuit.n_qubits();
    let suspect = std::mem::replace(&mut lane.suspect, false);
    let warm = match lane.parked.take() {
        Some(mut m) if !suspect => {
            stats.warm_reuses += 1;
            m.reset_session(ctx.clone(), n_qubits);
            Some(m)
        }
        Some(mut m) if cfg.suspect_validate => {
            match m.validated_reset_session(ctx.clone(), n_qubits) {
                Ok(()) => {
                    stats.validations += 1;
                    stats.warm_reuses += 1;
                    Some(m)
                }
                Err(_) => {
                    stats.validate_failures += 1;
                    stats.quarantines += 1;
                    lane.rebuild_pending = true;
                    None
                }
            }
        }
        Some(_) => {
            // Suspect and validation disabled: quarantine without looking.
            stats.quarantines += 1;
            lane.rebuild_pending = true;
            None
        }
        None => None,
    };
    let manager = match warm {
        Some(m) => m,
        None => {
            if std::mem::replace(&mut lane.rebuild_pending, false) {
                stats.rebuilds += 1;
            }
            match spec.options.cache_capacity {
                Some(c) => Manager::with_cache_capacity(ctx, n_qubits, c),
                None => Manager::new(ctx, n_qubits),
            }
        }
    };
    let (outcome, manager) = run_with_manager(manager, spec, cancel);
    if manager.retained_capacity() > cfg.max_retained_capacity {
        stats.shrinks += 1;
    } else if outcome.aborted.is_some() && !cfg.suspect_validate {
        // No validator to clear it later — quarantine immediately.
        stats.quarantines += 1;
        lane.rebuild_pending = true;
    } else {
        lane.suspect = outcome.aborted.is_some();
        lane.parked = Some(manager);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::RunBudget;

    /// Bit-identical equality of the fields a client observes.
    fn assert_outcomes_identical(a: &JobOutcome, b: &JobOutcome) {
        assert_eq!(a.gates_applied, b.gates_applied);
        assert_eq!(a.final_nodes, b.final_nodes);
        assert_eq!(a.top_probabilities.len(), b.top_probabilities.len());
        for ((ia, pa), (ib, pb)) in a.top_probabilities.iter().zip(&b.top_probabilities) {
            assert_eq!(ia, ib);
            assert_eq!(pa.to_bits(), pb.to_bits(), "probability bits diverged");
        }
        assert_eq!(a.aborted, b.aborted);
    }

    #[test]
    fn warm_session_runs_are_bit_identical_to_cold() {
        let c = aq_circuits::grover(5, 19);
        for scheme in [
            SchemeSpec::Numeric { eps: 1e-10 },
            SchemeSpec::Qomega,
            SchemeSpec::Gcd,
        ] {
            let cold = run_job(&JobSpec::new(&c, 0, scheme.clone()), None);
            let mut session = EngineSession::new(SessionConfig::default());
            let first = session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
            let second = session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
            assert_outcomes_identical(&cold, &first);
            assert_outcomes_identical(&cold, &second);
            assert_eq!(session.stats().jobs, 2);
            assert_eq!(session.stats().warm_reuses, 1, "second run must be warm");
            assert_eq!(session.stats().shrinks, 0);
            assert_eq!(session.stats().quarantines, 0);
        }
    }

    #[test]
    fn session_parks_one_manager_per_scheme_kind() {
        let c = aq_circuits::grover(4, 7);
        let mut session = EngineSession::new(SessionConfig::default());
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Gcd), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Gcd), None);
        let s = session.stats();
        assert_eq!(s.jobs, 4);
        assert_eq!(s.warm_reuses, 2, "each scheme kind warms independently");
    }

    #[test]
    fn retention_budget_drops_oversized_managers() {
        let c = aq_circuits::grover(5, 3);
        let mut session = EngineSession::new(SessionConfig {
            max_retained_capacity: 1,
            ..SessionConfig::default()
        });
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        let s = session.stats();
        assert_eq!(s.warm_reuses, 0, "nothing fits a 1-slot budget");
        assert_eq!(s.shrinks, 2);
    }

    #[test]
    fn numeric_eps_changes_between_warm_jobs_take_effect() {
        // The parked manager contributes allocations only: a different ε
        // on the next job must behave exactly as it would cold.
        let c = aq_circuits::grover(4, 11);
        let mut session = EngineSession::new(SessionConfig::default());
        let loose_warmup =
            session.run(&JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.3 }), None);
        let exact_warm = session.run(&JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.0 }), None);
        let exact_cold = run_job(&JobSpec::new(&c, 0, SchemeSpec::Numeric { eps: 0.0 }), None);
        assert_outcomes_identical(&exact_warm, &exact_cold);
        assert_eq!(session.stats().warm_reuses, 1);
        // sanity: the loose run really did something different
        assert!(loose_warmup.is_completed());
    }

    /// A tight budget abort leaves a structurally consistent manager: the
    /// suspect path must validate it, reuse the allocation, and count the
    /// validation — and the warm run after an abort stays bit-identical.
    #[test]
    fn budget_abort_marks_suspect_and_validated_reuse_is_bit_identical() {
        let c = aq_circuits::grover(5, 19);
        let mut session = EngineSession::new(SessionConfig::default());
        let mut abort_spec = JobSpec::new(&c, 0, SchemeSpec::Qomega);
        abort_spec.options.budget = RunBudget {
            max_nodes: Some(8),
            ..RunBudget::default()
        };
        let aborted = session.run(&abort_spec, None);
        assert!(aborted.aborted.is_some(), "tiny budget must abort");
        let warm = session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        let cold = run_job(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        assert_outcomes_identical(&warm, &cold);
        let s = session.stats();
        assert_eq!(s.validations, 1, "suspect reuse must run the checker");
        assert_eq!(s.warm_reuses, 1);
        assert_eq!(s.validate_failures, 0);
        assert_eq!(s.quarantines, 0);
        assert_eq!(s.rebuilds, 0);
    }

    /// With suspect validation disabled, an abort quarantines outright and
    /// the next job is a counted cold rebuild.
    #[test]
    fn abort_without_validation_quarantines_and_rebuilds_cold() {
        let c = aq_circuits::grover(5, 19);
        let mut session = EngineSession::new(SessionConfig {
            suspect_validate: false,
            ..SessionConfig::default()
        });
        let mut abort_spec = JobSpec::new(&c, 0, SchemeSpec::Qomega);
        abort_spec.options.budget = RunBudget {
            max_nodes: Some(8),
            ..RunBudget::default()
        };
        let aborted = session.run(&abort_spec, None);
        assert!(aborted.aborted.is_some());
        let next = session.run(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        let cold = run_job(&JobSpec::new(&c, 0, SchemeSpec::Qomega), None);
        assert_outcomes_identical(&next, &cold);
        let s = session.stats();
        assert_eq!(s.warm_reuses, 0);
        assert_eq!(s.quarantines, 1);
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.validations, 0);
    }

    /// A reported panic empties the lane; the next job builds cold and is
    /// still correct.
    #[test]
    fn note_panic_quarantines_the_lane() {
        let c = aq_circuits::grover(4, 7);
        let scheme = SchemeSpec::Numeric { eps: 1e-10 };
        let mut session = EngineSession::new(SessionConfig::default());
        session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
        session.note_panic(&scheme);
        let next = session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
        let cold = run_job(&JobSpec::new(&c, 0, scheme.clone()), None);
        assert_outcomes_identical(&next, &cold);
        let s = session.stats();
        assert_eq!(s.quarantines, 1);
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.warm_reuses, 0, "panic must force a cold rebuild");
    }

    /// Satellite regression: corrupt a parked session and assert the next
    /// job detects it (validate failure), runs cold, and is correct.
    #[cfg(feature = "chaos")]
    #[test]
    fn corrupted_parked_manager_is_caught_and_next_job_runs_cold() {
        let c = aq_circuits::grover(5, 19);
        for scheme in [
            SchemeSpec::Numeric { eps: 1e-10 },
            SchemeSpec::Qomega,
            SchemeSpec::Gcd,
        ] {
            let mut session = EngineSession::new(SessionConfig::default());
            session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
            assert!(
                session.chaos_corrupt_parked(&scheme, 0xC0FF_EE00),
                "a parked manager must exist to corrupt"
            );
            let next = session.run(&JobSpec::new(&c, 0, scheme.clone()), None);
            let cold = run_job(&JobSpec::new(&c, 0, scheme.clone()), None);
            assert_outcomes_identical(&next, &cold);
            let s = session.stats();
            assert_eq!(s.validate_failures, 1, "corruption must fail validation");
            assert_eq!(s.quarantines, 1);
            assert_eq!(s.rebuilds, 1);
            assert_eq!(s.warm_reuses, 0, "corrupted manager must not be reused");
        }
    }
}
