//! DD-based quantum circuit simulation with measurement instrumentation.
//!
//! This crate drives the QMDD engine over the benchmark circuits and
//! records the three quantities the paper's evaluation plots per applied
//! gate (Figs. 2–5):
//!
//! * **size** — nodes of the evolved state's decision diagram,
//! * **accuracy** — Euclidean distance of the (renormalised) numeric state
//!   vector from the exact algebraic one (footnote 8 of the paper),
//! * **run-time** — cumulative CPU time of the DD operations.
//!
//! # Examples
//!
//! ```
//! use aq_circuits::grover;
//! use aq_dd::QomegaContext;
//! use aq_sim::Simulator;
//!
//! let circuit = grover(4, 11);
//! let mut sim = Simulator::new(QomegaContext::new(), &circuit);
//! let result = sim.run();
//! // Grover amplifies the marked element:
//! let probs = result.probabilities();
//! let best = probs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|x| x.0);
//! assert_eq!(best, Some(11));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod accuracy;
mod checkpoint;
pub mod job;
mod operators;
mod report;
mod sample;
mod session;
mod simulator;
pub mod sweep;
mod trace;

use aq_dd::WeightContext;

pub use accuracy::{circuits_equivalent, normalized_distance, PairedRun};
pub use checkpoint::{
    circuit_fingerprint, peek_checkpoint, CheckpointInfo, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use job::{run_job, JobAbortInfo, JobOutcome, JobSpec, SampleParams, SchemeSpec};
pub use operators::{
    circuit_unitary, matching_evolution, op_operator, permutation, try_circuit_unitary,
    try_matching_evolution, try_op_operator, try_permutation,
};
pub use report::{write_csv, Column};
pub use sample::{SampleProbability, SampleReport};
pub use session::{EngineSession, SessionConfig, SessionStats};
pub use simulator::{SimAbort, SimError, SimOptions, SimResult, Simulator};
pub use trace::{Trace, TracePoint};
