//! Checkpoint/resume integration tests: a budget-aborted run dumped to
//! disk and resumed in a fresh simulator must finish with exactly the
//! state an uninterrupted run produces, and every way a checkpoint can be
//! wrong (different circuit, corrupted file, missing file) must surface
//! as a structured `EngineError::Snapshot*` value.

use std::path::PathBuf;

use aq_circuits::{grover, Circuit};
use aq_dd::{EngineError, NumericContext, QomegaContext, RunBudget};
use aq_sim::{peek_checkpoint, SimOptions, Simulator};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("aq_sim_checkpoint_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Aborts a Grover run on a node budget with `checkpoint_on_abort` set,
/// returning the circuit and the checkpoint path `try_run` reported.
fn aborted_run(name: &str) -> (Circuit, PathBuf) {
    let circuit = grover(5, 11);
    let path = temp_path(name);
    std::fs::remove_file(&path).ok();
    let options = SimOptions {
        budget: RunBudget::unlimited().with_max_nodes(12),
        checkpoint_on_abort: Some(path.clone()),
        ..SimOptions::default()
    };
    let mut sim = Simulator::with_options(NumericContext::with_eps(1e-10), &circuit, options);
    let abort = sim.try_run().expect_err("12-node budget must abort");
    assert!(abort.gates_applied > 0, "some prefix must have run");
    assert!(abort.gates_applied < circuit.len());
    let reported = abort.checkpoint.clone().expect("checkpoint dump succeeded");
    assert_eq!(reported, path);
    (circuit, path)
}

#[test]
fn resumed_run_matches_an_uninterrupted_one() {
    let (circuit, path) = aborted_run("resume_matches.aqckp");

    let info = peek_checkpoint(&path).expect("peek");
    assert_eq!(info.label, "try_run-abort");
    assert_eq!(info.n_qubits, circuit.n_qubits());
    assert_eq!(info.circuit_len, circuit.len() as u64);
    assert!(info.gates_applied > 0);

    let (mut resumed, stored_trace) = Simulator::resume(
        NumericContext::with_eps(1e-10),
        &circuit,
        &path,
        SimOptions::default(),
    )
    .expect("resume");
    assert_eq!(resumed.gates_applied() as u64, info.gates_applied);
    assert!(
        stored_trace.aborted.is_none(),
        "the abort reason is cleared on resume"
    );
    assert_eq!(stored_trace.points.len(), info.gates_applied as usize);
    let result = resumed.try_run().expect("unlimited budget completes");

    let mut uninterrupted = Simulator::new(NumericContext::with_eps(1e-10), &circuit);
    let expected = uninterrupted.run();

    // Bit-identical, not approximately equal: the checkpoint stores the
    // full uncompacted weight table, so the resumed run replays the exact
    // same ε-merge decisions as the uninterrupted one.
    assert_eq!(result.amplitudes, expected.amplitudes);
    assert_eq!(result.final_nodes, expected.final_nodes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_against_a_different_circuit_is_a_mismatch() {
    let (_circuit, path) = aborted_run("resume_mismatch.aqckp");
    let other = grover(5, 12); // same shape, different oracle
    let err = Simulator::resume(
        NumericContext::with_eps(1e-10),
        &other,
        &path,
        SimOptions::default(),
    )
    .map(|_| ())
    .expect_err("different circuit must not resume");
    assert!(matches!(err, EngineError::SnapshotMismatch { .. }), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_with_a_different_context_is_a_mismatch() {
    let (circuit, path) = aborted_run("resume_ctx_mismatch.aqckp");
    let err = Simulator::resume(QomegaContext::new(), &circuit, &path, SimOptions::default())
        .map(|_| ())
        .expect_err("numeric checkpoint must not load into an algebraic context");
    assert!(matches!(err, EngineError::SnapshotMismatch { .. }), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checkpoints_are_rejected_structurally() {
    let (circuit, path) = aborted_run("resume_corrupt.aqckp");
    let pristine = std::fs::read(&path).expect("read checkpoint");
    for i in (0..pristine.len()).step_by(7) {
        let mut corrupted = pristine.clone();
        corrupted[i] ^= 1 << (i % 8);
        std::fs::write(&path, &corrupted).expect("write corrupted");
        let err = Simulator::resume(
            NumericContext::with_eps(1e-10),
            &circuit,
            &path,
            SimOptions::default(),
        )
        .map(|_| ())
        .expect_err("corrupted checkpoint must not resume");
        assert!(err.is_snapshot(), "byte {i}: {err}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_checkpoint_is_an_io_error() {
    let circuit = grover(3, 2);
    let err = Simulator::resume(
        NumericContext::new(),
        &circuit,
        temp_path("never_written.aqckp"),
        SimOptions::default(),
    )
    .map(|_| ())
    .expect_err("missing file");
    assert!(matches!(err, EngineError::SnapshotIo { .. }), "{err}");
}

#[test]
fn manual_checkpoint_of_a_healthy_run_resumes_too() {
    // checkpoints are not abort-only: a long sweep can checkpoint
    // periodically and survive a kill -9 between gates
    let circuit = grover(4, 7);
    let path = temp_path("manual.aqckp");
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    for _ in 0..5 {
        sim.try_step().expect("unlimited budget");
    }
    sim.checkpoint(&path, "manual/grover4").expect("checkpoint");

    let info = peek_checkpoint(&path).expect("peek");
    assert_eq!(info.label, "manual/grover4");
    assert_eq!(info.gates_applied, 5);

    let (mut resumed, _) =
        Simulator::resume(QomegaContext::new(), &circuit, &path, SimOptions::default())
            .expect("resume");
    let got = resumed.try_run().expect("completes").amplitudes;
    let want = sim.try_run().expect("completes").amplitudes;
    assert_eq!(got, want, "exact algebraic runs must agree bit-for-bit");
    std::fs::remove_file(&path).ok();
}
