//! Cross-validation against a straightforward dense state-vector
//! simulator — an oracle fully independent of the decision-diagram
//! engine, catching systematic errors that DD-vs-DD comparisons share.

use aq_circuits::{bwt, grover, BwtParams, Circuit, Op};
use aq_dd::{GateEntry, QomegaContext};
use aq_rings::Complex64;
use aq_sim::{normalized_distance, Simulator};
use aq_testutil::proptest::prelude::*;

/// Plain `2ⁿ`-vector simulation of a circuit (the “straight-forward
/// representation” the paper's Sec. II-B contrasts DDs with).
fn dense_simulate(circuit: &Circuit, start: u64) -> Vec<Complex64> {
    let n = circuit.n_qubits();
    let dim = 1usize << n;
    let mut state = vec![Complex64::ZERO; dim];
    state[start as usize] = Complex64::ONE;

    for op in circuit.iter() {
        match op {
            Op::Gate {
                matrix,
                target,
                controls,
            } => {
                let entries = matrix.entries();
                let get = |e: &GateEntry| match e {
                    GateEntry::Exact(d) => d.to_complex64(),
                    GateEntry::Approx(c) => *c,
                };
                let u = [
                    get(&entries[0]),
                    get(&entries[1]),
                    get(&entries[2]),
                    get(&entries[3]),
                ];
                let tbit = 1usize << (n - 1 - target);
                let mut next = state.clone();
                for i in 0..dim {
                    if i & tbit != 0 {
                        continue; // handle each target pair once, from the 0 side
                    }
                    let j = i | tbit;
                    let fires = controls.iter().all(|&(c, pol)| {
                        let cbit = 1usize << (n - 1 - c);
                        (i & cbit != 0) == pol
                    });
                    if !fires {
                        continue;
                    }
                    let (a, b) = (state[i], state[j]);
                    next[i] = u[0] * a + u[1] * b;
                    next[j] = u[2] * a + u[3] * b;
                }
                state = next;
            }
            Op::MatchingEvolution { pairs } => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                let c = Complex64::new(s, 0.0);
                let ms = Complex64::new(0.0, -s);
                for &(x, y) in pairs.iter() {
                    let (a, b) = (state[x as usize], state[y as usize]);
                    state[x as usize] = c * a + ms * b;
                    state[y as usize] = ms * a + c * b;
                }
            }
            Op::Permutation { map } => {
                let mut next = vec![Complex64::ZERO; dim];
                for (x, &y) in map.iter().enumerate() {
                    next[y as usize] = state[x];
                }
                state = next;
            }
            Op::Measure { .. } | Op::Reset { .. } | Op::Conditional { .. } => {
                panic!("the dense oracle only covers unitary circuits")
            }
        }
    }
    state
}

#[test]
fn grover_matches_dense_oracle() {
    let circuit = grover(6, 45);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    let dd = sim.run().amplitudes;
    let dense = dense_simulate(&circuit, 0);
    assert!(normalized_distance(&dd, &dense) < 1e-10);
}

#[test]
fn bwt_matches_dense_oracle() {
    let (circuit, tree) = bwt(BwtParams {
        height: 3,
        steps: 15,
        seed: 21,
    });
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    sim.reset_to(tree.coined_start());
    let dd = sim.run().amplitudes;
    let dense = dense_simulate(&circuit, tree.coined_start());
    assert!(normalized_distance(&dd, &dense) < 1e-10);
}

#[derive(Debug, Clone)]
enum RndOp {
    H(u32),
    T(u32),
    Y(u32),
    Sx(u32),
    Cx(u32, u32),
    NegCx(u32, u32),
    Ccz(u32, u32, u32),
}

fn rnd_op(n: u32) -> impl Strategy<Value = RndOp> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(RndOp::H),
        q.clone().prop_map(RndOp::T),
        q.clone().prop_map(RndOp::Y),
        q.clone().prop_map(RndOp::Sx),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(RndOp::Cx(a, b))),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(RndOp::NegCx(a, b))),
        (0..n, 0..n, 0..n).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then_some(RndOp::Ccz(a, b, c))
        }),
    ]
}

fn build(n: u32, ops: &[RndOp]) -> Circuit {
    use aq_dd::GateMatrix;
    let mut c = Circuit::new(n);
    for o in ops {
        match o {
            RndOp::H(q) => c.push_gate(GateMatrix::h(), *q, &[]),
            RndOp::T(q) => c.push_gate(GateMatrix::t(), *q, &[]),
            RndOp::Y(q) => c.push_gate(GateMatrix::y(), *q, &[]),
            RndOp::Sx(q) => c.push_gate(GateMatrix::sx(), *q, &[]),
            RndOp::Cx(a, b) => c.push_gate(GateMatrix::x(), *b, &[(*a, true)]),
            RndOp::NegCx(a, b) => c.push_gate(GateMatrix::x(), *b, &[(*a, false)]),
            RndOp::Ccz(a, b, t) => c.push_gate(GateMatrix::z(), *t, &[(*a, true), (*b, true)]),
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_match_dense_oracle(
        ops in prop::collection::vec(rnd_op(5), 0..30),
        start in 0u64..32,
    ) {
        let circuit = build(5, &ops);
        let mut sim = Simulator::new(QomegaContext::new(), &circuit);
        sim.reset_to(start);
        let dd = sim.run().amplitudes;
        let dense = dense_simulate(&circuit, start);
        for (i, (a, b)) in dd.iter().zip(&dense).enumerate() {
            prop_assert!((*a - *b).abs() < 1e-10, "amplitude {i}: {a:?} vs {b:?}");
        }
    }
}
