//! End-to-end simulation tests: the three benchmark workloads across
//! weight systems.

use aq_circuits::cliffordt::CliffordTCompiler;
use aq_circuits::{bwt, grover, gse, BwtParams, GseParams};
use aq_dd::{GcdContext, NumericContext, QomegaContext};
use aq_sim::{normalized_distance, PairedRun, SimOptions, Simulator};

#[test]
fn grover_finds_marked_element_all_contexts() {
    let n = 6;
    let marked = 0b101101u64;
    let circuit = grover(n, marked);

    let check = |probs: Vec<f64>| {
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty");
        assert_eq!(best as u64, marked);
        assert!(*p > 0.9, "amplification too weak: {p}");
    };

    let mut s = Simulator::new(QomegaContext::new(), &circuit);
    check(s.run().probabilities());
    let mut s = Simulator::new(GcdContext::new(), &circuit);
    check(s.run().probabilities());
    let mut s = Simulator::new(NumericContext::with_eps(1e-12), &circuit);
    check(s.run().probabilities());
}

#[test]
fn grover_state_stays_tiny_algebraically() {
    // The Grover state at iteration boundaries has two distinct
    // amplitudes (n nodes); mid-oracle/diffusion intermediates are
    // slightly richer but still linear in n — the compactness half of
    // the paper's claim. With exact weights nothing ever blows up.
    let circuit = grover(8, 17);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    let result = sim.run();
    // two distinct amplitudes = a marked-path chain beside the uniform
    // subtree: at most 2n − 1 nodes
    assert!(result.final_nodes <= 15, "final {}", result.final_nodes);
    assert!(
        result.trace.peak_nodes() <= 4 * 8,
        "peak {}",
        result.trace.peak_nodes()
    );
}

#[test]
fn bwt_walk_is_unitary_and_spreads_to_exit_side() {
    let (circuit, tree) = bwt(BwtParams {
        height: 3,
        steps: 40,
        seed: 11,
    });
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    sim.reset_to(tree.coined_start());
    let result = sim.run();
    let probs = tree.vertex_probabilities(&result.amplitudes);
    let total: f64 = probs.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "walk must stay unitary: {total}"
    );
    // probability must have reached the second tree (labels ≥ offset)
    let off = 1usize << 4;
    let second_tree: f64 = probs[off..].iter().sum();
    assert!(
        second_tree > 0.05,
        "walk failed to cross the weld: {second_tree}"
    );
    // label 0 is unused and must stay unpopulated
    assert!(probs[0] < 1e-12);
}

#[test]
fn bwt_trotter_walk_is_unitary() {
    use aq_circuits::bwt_trotter;
    let (circuit, tree) = bwt_trotter(BwtParams {
        height: 3,
        steps: 20,
        seed: 11,
    });
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    sim.reset_to(tree.entrance());
    let result = sim.run();
    let total: f64 = result.probabilities().iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "walk must stay unitary: {total}"
    );
}

#[test]
fn bwt_matches_between_numeric_and_algebraic() {
    let (circuit, tree) = bwt(BwtParams {
        height: 2,
        steps: 12,
        seed: 3,
    });
    let mut alg = Simulator::new(QomegaContext::new(), &circuit);
    alg.reset_to(tree.coined_start());
    let mut num = Simulator::new(NumericContext::with_eps(1e-12), &circuit);
    num.reset_to(tree.coined_start());
    let va = alg.run().amplitudes;
    let vn = num.run().amplitudes;
    assert!(normalized_distance(&vn, &va) < 1e-9);
}

#[test]
fn gse_compiled_circuit_runs_in_every_context() {
    let params = GseParams {
        precision_bits: 2,
        ..GseParams::default()
    };
    let raw = gse(&params);
    let mut comp = CliffordTCompiler::new(6);
    let (compiled, worst) = comp.compile(&raw);
    assert!(compiled.is_exact());
    assert!(worst < 0.5);

    // the same Clifford+T circuit runs numerically and algebraically;
    // both must produce the identical state (it is the same circuit!)
    let mut alg = Simulator::new(QomegaContext::new(), &compiled);
    let va = alg.run().amplitudes;
    let mut num = Simulator::new(NumericContext::with_eps(1e-12), &compiled);
    let vn = num.run().amplitudes;
    assert!(normalized_distance(&vn, &va) < 1e-8);
}

#[test]
fn epsilon_too_large_destroys_the_grover_state() {
    // Sec. III / Fig. 2 of the paper: a huge tolerance collapses the state
    // (information loss), here measured against the exact reference.
    let circuit = grover(5, 9);
    let pair = PairedRun::new(NumericContext::with_eps(1e-1), &circuit, 5);
    let (subject, _) = pair.run();
    let err = subject.final_error().expect("sampled");
    assert!(err > 0.5, "expected catastrophic loss, got {err}");
}

#[test]
fn moderate_epsilon_tracks_exact_result() {
    let circuit = grover(5, 9);
    let pair = PairedRun::new(NumericContext::with_eps(1e-10), &circuit, 7);
    let (subject, reference) = pair.run();
    let err = subject.final_error().expect("sampled");
    assert!(err < 1e-6, "moderate ε should track: {err}");
    assert!(reference.max_error().is_none());
}

#[test]
fn compaction_threshold_does_not_change_results() {
    let circuit = grover(5, 21);
    let mut tight = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            record_trace: false,
            compact_threshold: 64, // absurdly small: compacts constantly
            ..SimOptions::default()
        },
    );
    let mut loose = Simulator::new(QomegaContext::new(), &circuit);
    let a = tight.run().amplitudes;
    let b = loose.run().amplitudes;
    assert!(normalized_distance(&a, &b) < 1e-12);
}

#[test]
fn tiny_lossy_caches_are_bit_identical_to_default_caches() {
    // The compute caches are lossy memoisation, not state: shrinking them
    // to a handful of slots (forcing constant evictions) and compacting
    // constantly must reproduce the default run bit for bit.
    let circuit = grover(6, 45);
    let mut starved = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            record_trace: false,
            compact_threshold: 64,   // compacts after almost every gate
            cache_capacity: Some(4), // four slots per compute cache
            ..SimOptions::default()
        },
    );
    let mut default = Simulator::new(QomegaContext::new(), &circuit);
    let a = starved.run().amplitudes;
    let b = default.run().amplitudes;
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        // exact algebraic weights: the amplitudes are equal as f64 bits
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
    let stats = starved.statistics();
    let total_evictions =
        stats.add_vec.evictions + stats.add_mat.evictions + stats.mv.evictions + stats.mm.evictions;
    assert!(
        total_evictions > 0,
        "tiny caches must actually evict to exercise the lossy path"
    );
    assert!(stats.compactions > 0, "threshold 64 must force compactions");
}

#[test]
fn statistics_counters_are_monotone_and_consistent() {
    let circuit = grover(5, 9);
    let mut sim = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            record_trace: false,
            compact_threshold: 64, // counters must survive compaction
            ..SimOptions::default()
        },
    );
    let mut prev = sim.statistics();
    while sim.step() {
        let now = sim.statistics();
        for (p, n) in [
            (prev.add_vec, now.add_vec),
            (prev.add_mat, now.add_mat),
            (prev.mv, now.mv),
            (prev.mm, now.mm),
        ] {
            assert!(n.lookups >= p.lookups, "lookups must be monotone");
            assert!(n.hits >= p.hits, "hits must be monotone");
            assert!(n.misses >= p.misses, "misses must be monotone");
            assert!(n.insertions >= p.insertions);
            assert!(n.evictions >= p.evictions);
            assert_eq!(n.lookups, n.hits + n.misses, "lookups = hits + misses");
        }
        assert!(now.compactions >= prev.compactions);
        prev = now;
    }
    // the run did real work through the caches
    assert!(prev.mv.lookups > 0);
    assert!(prev.cache_hit_rate() > 0.0);
    assert!(prev.distinct_weights >= 2);
}

#[test]
fn trace_records_every_gate() {
    let circuit = grover(4, 1);
    let mut sim = Simulator::new(GcdContext::new(), &circuit);
    let result = sim.run();
    assert_eq!(result.trace.points.len(), circuit.len());
    assert!(result.trace.total_seconds() > 0.0);
    let last = result.trace.points.last().expect("nonempty");
    assert_eq!(last.gates_applied, circuit.len());
    assert_eq!(last.nodes, result.final_nodes);
}
