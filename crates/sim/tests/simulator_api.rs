//! API-surface tests for the simulator: cursor semantics, resets,
//! unitary building, and option handling.

use aq_circuits::{grover, Circuit};
use aq_dd::{GateMatrix, NumericContext, QomegaContext};
use aq_sim::{circuit_unitary, circuits_equivalent, SimOptions, Simulator};

#[test]
fn cursor_and_done_semantics() {
    let circuit = grover(3, 5);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    assert_eq!(sim.gates_applied(), 0);
    assert!(!sim.is_done());
    assert!(sim.step());
    assert_eq!(sim.gates_applied(), 1);
    while sim.step() {}
    assert!(sim.is_done());
    assert_eq!(sim.gates_applied(), circuit.len());
    assert!(!sim.step(), "stepping past the end returns false");
    assert!(sim.elapsed_seconds() > 0.0);
}

#[test]
fn reset_restarts_cleanly() {
    let circuit = grover(3, 2);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    while sim.step() {}
    let s1 = sim.state();
    let first = sim.manager_mut().amplitudes(&s1);
    sim.reset_to(0);
    assert_eq!(sim.gates_applied(), 0);
    assert_eq!(sim.elapsed_seconds(), 0.0);
    while sim.step() {}
    let s2 = sim.state();
    let second = sim.manager_mut().amplitudes(&s2);
    for (a, b) in first.iter().zip(&second) {
        assert!((*a - *b).abs() < 1e-14, "determinism after reset");
    }
}

#[test]
fn build_unitary_consumes_remaining_ops_only() {
    let mut circuit = Circuit::new(2);
    circuit.push_gate(GateMatrix::x(), 0, &[]);
    circuit.push_gate(GateMatrix::h(), 1, &[]);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    assert!(sim.step()); // consume the X
    let u = sim.build_unitary(); // only the H remains
    assert!(sim.is_done());
    let m = sim.manager_mut();
    let want = m.gate(&GateMatrix::h(), 1, &[]);
    assert_eq!(u, want);
}

#[test]
fn equivalence_helper_agrees_with_manual_build() {
    let mut a = Circuit::new(2);
    a.push_gate(GateMatrix::s(), 0, &[]);
    a.push_gate(GateMatrix::s(), 0, &[]);
    let mut b = Circuit::new(2);
    b.push_gate(GateMatrix::z(), 0, &[]);
    assert!(circuits_equivalent(QomegaContext::new(), &a, &b));

    let mut m = aq_dd::Manager::new(QomegaContext::new(), 2);
    let ua = circuit_unitary(&mut m, &a);
    let ub = circuit_unitary(&mut m, &b);
    assert_eq!(ua, ub);
}

#[test]
#[should_panic(expected = "circuit width mismatch")]
fn equivalence_rejects_width_mismatch() {
    let a = Circuit::new(2);
    let b = Circuit::new(3);
    let _ = circuits_equivalent(QomegaContext::new(), &a, &b);
}

#[test]
#[should_panic(expected = "not representable")]
fn algebraic_simulator_panics_on_rotations() {
    let mut c = Circuit::new(1);
    c.push_gate(GateMatrix::rz(0.7), 0, &[]);
    let mut sim = Simulator::new(QomegaContext::new(), &c);
    let _ = sim.step();
}

#[test]
fn trace_can_be_disabled() {
    let circuit = grover(4, 3);
    let mut sim = Simulator::with_options(
        NumericContext::with_eps(1e-12),
        &circuit,
        SimOptions {
            record_trace: false,
            ..SimOptions::default()
        },
    );
    let result = sim.run();
    assert!(result.trace.points.is_empty());
    assert!(result.final_nodes > 0);
}

#[test]
fn empty_circuit_runs_to_a_basis_state() {
    let circuit = Circuit::new(3);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    sim.reset_to(6);
    let result = sim.run();
    assert!((result.amplitudes[6].re - 1.0).abs() < 1e-15);
    assert!(result.trace.points.is_empty());
}

#[test]
fn circuit_inverse_composes_to_identity() {
    // gate circuit: Grover round trip
    let c = grover(4, 6);
    let mut both = c.clone();
    both.extend_from(&c.inverted());
    assert!(circuits_equivalent(
        QomegaContext::new(),
        &both,
        &Circuit::new(4)
    ));

    // permutation ops: coined BWT shift inverts correctly
    use aq_circuits::{bwt, BwtParams};
    let (walk, tree) = bwt(BwtParams {
        height: 2,
        steps: 3,
        seed: 4,
    });
    let mut round = walk.clone();
    round.extend_from(&walk.inverted());
    let mut sim = Simulator::new(QomegaContext::new(), &round);
    sim.reset_to(tree.coined_start());
    let result = sim.run();
    assert!((result.amplitudes[tree.coined_start() as usize].re - 1.0).abs() < 1e-12);
}
