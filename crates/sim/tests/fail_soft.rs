//! Fail-soft simulation: budget aborts carry partial results, operator
//! caching keys walk ops by kind, and compaction mid-`build_unitary`
//! stays transparent.

use aq_circuits::{grover, Circuit, Op};
use aq_dd::{GateMatrix, NumericContext, QomegaContext, RunBudget};
use aq_sim::{op_operator, SimOptions, Simulator};

#[test]
fn try_run_returns_partial_trace_and_statistics() {
    let circuit = grover(5, 9);
    let mut sim = Simulator::with_options(
        NumericContext::with_eps(0.0),
        &circuit,
        SimOptions {
            budget: RunBudget::unlimited().with_max_nodes(12),
            ..SimOptions::default()
        },
    );
    let abort = *sim.try_run().expect_err("tiny node budget must abort");
    assert!(abort.error.source.is_budget());
    assert!(abort.gates_applied < circuit.len());
    assert_eq!(abort.error.op_index, abort.gates_applied);
    // the partial trace covers exactly the applied prefix and names the
    // abort reason
    assert_eq!(abort.trace.points.len(), abort.gates_applied);
    let reason = abort.trace.aborted.as_deref().expect("reason recorded");
    assert!(reason.contains("node budget"), "reason: {reason}");
    // statistics at the abort point reflect real work
    assert!(abort.statistics.mv.lookups > 0);
}

#[test]
fn try_run_succeeds_under_a_generous_budget() {
    let circuit = grover(4, 3);
    let mut sim = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            budget: RunBudget::unlimited().with_max_nodes(1 << 20),
            ..SimOptions::default()
        },
    );
    let result = sim.try_run().expect("generous budget must not abort");
    assert!(result.trace.aborted.is_none());
    let best = result
        .probabilities()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|x| x.0);
    assert_eq!(best, Some(3));
}

#[test]
fn try_build_unitary_aborts_with_the_failing_op_index() {
    let circuit = grover(5, 17);
    let mut sim = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            record_trace: false,
            budget: RunBudget::unlimited().with_max_nodes(16),
            ..SimOptions::default()
        },
    );
    let err = sim
        .try_build_unitary()
        .expect_err("matrix-matrix products blow the tiny budget");
    assert!(err.source.is_budget());
    assert!(err.op_index < circuit.len());
}

#[test]
fn matching_and_permutation_ops_are_cached_separately() {
    // Regression: the operator cache used to key `MatchingEvolution` and
    // `Permutation` by raw Arc address with no variant tag, so the two op
    // kinds could alias. A circuit interleaving *repeated* instances of
    // both (cache hits on each re-use) must match composing the operators
    // freshly, without any cache.
    let n = 3;
    let mut c = Circuit::new(n);
    let matching = vec![(0u64, 3u64), (1, 6)];
    let rotate: Vec<u64> = (0..(1u64 << n)).map(|x| (x + 1) % (1 << n)).collect();
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
    }
    c.push_matching(matching.clone());
    c.push_permutation(rotate.clone());
    c.push_gate(GateMatrix::t(), 1, &[]);
    // literal re-use of the same Arcs — these hit the operator cache
    let ops: Vec<Op> = c.ops().to_vec();
    for op in &ops[n as usize..] {
        c.push(op.clone());
    }

    let mut sim = Simulator::new(QomegaContext::new(), &c);
    let cached = sim.run().amplitudes;

    // reference: apply each op's operator built fresh every time
    let mut m = aq_dd::Manager::new(QomegaContext::new(), n);
    let mut state = m.basis_state(0);
    for op in c.ops() {
        let u = op_operator(&mut m, op);
        state = m.mat_vec(&u, &state);
    }
    let fresh = m.amplitudes(&state);
    assert_eq!(cached.len(), fresh.len());
    for (a, b) in cached.iter().zip(&fresh) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
}

#[test]
fn compaction_mid_build_unitary_is_bit_identical() {
    // Compaction during the matrix-matrix pipeline remaps the partial
    // product (a *matrix* root). The compacted build must reproduce the
    // uncompacted unitary bit for bit.
    let compiled = grover(4, 5);

    let mut tight = Simulator::with_options(
        QomegaContext::new(),
        &compiled,
        SimOptions {
            record_trace: false,
            compact_threshold: 64, // compacts after almost every product
            ..SimOptions::default()
        },
    );
    let u_tight = tight.build_unitary();
    assert!(
        tight.statistics().compactions > 0,
        "threshold 64 must force compactions mid-build"
    );

    let mut loose = Simulator::with_options(
        QomegaContext::new(),
        &compiled,
        SimOptions {
            record_trace: false,
            ..SimOptions::default()
        },
    );
    let u_loose = loose.build_unitary();

    // compare the full matrices entrywise, as bits
    let a = tight.manager_mut().matrix(&u_tight);
    let b = loose.manager_mut().matrix(&u_loose);
    for (ra, rb) in a.iter().zip(&b) {
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}
