//! The workspace call graph: one node per parsed function, one edge per
//! resolved call or method-call event.
//!
//! Edges carry the call-site byte offset (for path reporting) and whether
//! the site sits inside a `catch_unwind(…)` argument — panic-reachability
//! refuses to cross guarded edges, while lock propagation follows them
//! (a guarded callee still acquires its locks).

use std::collections::{HashMap, VecDeque};

use crate::parser::{Event, ParsedFile};
use crate::resolve::{FnId, Workspace};

/// One resolved call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Calling function.
    pub caller: FnId,
    /// Called function.
    pub callee: FnId,
    /// Byte offset of the callee name at the site.
    pub pos: usize,
    /// The site lies inside a `catch_unwind(…)` argument.
    pub guarded: bool,
}

/// The graph plus adjacency indexes.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All resolved edges, deduplicated per `(caller, callee, guarded)`.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per caller.
    pub out: HashMap<FnId, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from every non-test function body. Test functions
    /// neither call nor get called here: the semantic passes reason about
    /// shipped code only.
    pub fn build(ws: &Workspace<'_>) -> CallGraph {
        let mut g = CallGraph::default();
        let mut seen: HashMap<(FnId, FnId, bool), ()> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let caller = (fi, gi);
                for ev in &f.body {
                    let (targets, pos, guarded) = match ev {
                        Event::Call {
                            path, pos, guarded, ..
                        } => (
                            ws.resolve_call(fi, f.owner.as_deref(), path),
                            *pos,
                            *guarded,
                        ),
                        Event::Method {
                            recv,
                            name,
                            pos,
                            guarded,
                            ..
                        } => (
                            ws.resolve_method(f.owner.as_deref(), recv, name),
                            *pos,
                            *guarded,
                        ),
                        _ => continue,
                    };
                    for callee in targets {
                        if ws.fn_def(callee).is_test || callee == caller {
                            continue;
                        }
                        if seen.insert((caller, callee, guarded), ()).is_none() {
                            g.out.entry(caller).or_default().push(g.edges.len());
                            g.edges.push(Edge {
                                caller,
                                callee,
                                pos,
                                guarded,
                            });
                        }
                    }
                }
            }
        }
        g
    }

    /// BFS over unguarded edges from `roots`; returns the first-visit
    /// parent edge per reached function (roots map to no parent).
    pub fn reach_unguarded(&self, roots: &[FnId]) -> HashMap<FnId, Option<usize>> {
        let mut parent: HashMap<FnId, Option<usize>> = HashMap::new();
        let mut q: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                q.push_back(r);
            }
        }
        while let Some(f) = q.pop_front() {
            for &ei in self.out.get(&f).into_iter().flatten() {
                let e = &self.edges[ei];
                if e.guarded {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(v) = parent.entry(e.callee) {
                    v.insert(Some(ei));
                    q.push_back(e.callee);
                }
            }
        }
        parent
    }

    /// The root→`f` call chain implied by a `reach_unguarded` parent map,
    /// as qualified names.
    pub fn chain(
        &self,
        ws: &Workspace<'_>,
        parent: &HashMap<FnId, Option<usize>>,
        f: FnId,
    ) -> Vec<String> {
        let mut chain = vec![ws.fn_def(f).qname()];
        let mut cur = f;
        let mut hops = 0;
        while let Some(Some(ei)) = parent.get(&cur) {
            let e = &self.edges[*ei];
            cur = e.caller;
            chain.push(ws.fn_def(cur).qname());
            hops += 1;
            if hops > 256 {
                break; // defensive: parent maps are acyclic by construction
            }
        }
        chain.reverse();
        chain
    }
}

/// Renders the graph as sorted `caller -> callee` qualified-name lines —
/// the snapshot-test format.
pub fn snapshot(ws: &Workspace<'_>, g: &CallGraph) -> Vec<String> {
    let mut lines: Vec<String> = g
        .edges
        .iter()
        .map(|e| {
            format!(
                "{} -> {}{}",
                ws.fn_def(e.caller).qname(),
                ws.fn_def(e.callee).qname(),
                if e.guarded { " [guarded]" } else { "" }
            )
        })
        .collect();
    lines.sort();
    lines.dedup();
    lines
}

/// Convenience for tests: parse in-memory sources and snapshot the graph.
pub fn snapshot_sources(sources: &[(&str, &str)]) -> Vec<String> {
    let analyses: Vec<crate::rules::FileAnalysis<'_>> = sources
        .iter()
        .map(|(rel, src)| crate::rules::FileAnalysis::new(rel, src))
        .collect();
    let parsed: Vec<ParsedFile> = analyses.iter().map(crate::parser::parse).collect();
    let ws = Workspace::build(&parsed);
    let g = CallGraph::build(&ws);
    snapshot(&ws, &g)
}
