//! The workspace runner: file discovery, rule execution, the semantic
//! passes, baseline application and the structured report.
//!
//! Token-local rules (R1–R7, A0) run per file; the semantic passes
//! (R8–R10) need every file at once — so the runner loads the whole
//! workspace into memory, analyses each file, hands the full slice to
//! [`crate::semantic::analyze`], then applies the baseline to the merged
//! finding stream.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::baseline::Baseline;
use crate::rules::{check_file, FileAnalysis, Finding, LintConfig, Severity};
use crate::semantic::{self, LockGraph};

/// Why a run could not produce a report at all. Distinct from findings:
/// the CLI maps this to exit code 2, findings at deny level to exit 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InternalError {
    /// Filesystem access failed.
    Io {
        /// Path involved.
        path: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// The baseline file is malformed.
    Baseline(String),
}

impl std::fmt::Display for InternalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternalError::Io { path, detail } => write!(f, "io error on {path}: {detail}"),
            InternalError::Baseline(e) => write!(f, "malformed baseline: {e}"),
        }
    }
}

/// Analyzer throughput counters for the `--stats` line.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Files scanned.
    pub files: usize,
    /// Functions parsed across the workspace.
    pub items: usize,
    /// Resolved call-graph edges.
    pub call_edges: usize,
    /// Wall-clock time of the whole run, in milliseconds.
    pub wall_ms: u128,
}

/// The outcome of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by file, line, column.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by inline `aq-lint: allow` directives — these
    /// never reach the report (counted inside the rules), so this counts
    /// only baseline suppressions for transparency.
    pub baseline_suppressed: usize,
    /// Baseline entries that matched nothing (pay-down candidates).
    pub stale_baseline: Vec<String>,
    /// Throughput counters.
    pub stats: RunStats,
    /// The static lock-order graph R9 extracted (for `--lock-dot` and
    /// the serve runtime-diff test).
    pub lock_graph: LockGraph,
}

impl Report {
    /// Whether any finding is at deny level.
    pub fn has_deny(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "node_modules"];

/// Recursively collects every `.rs` file under `root`, returning
/// workspace-relative forward-slash paths in deterministic order.
///
/// # Errors
///
/// [`InternalError::Io`] if a directory cannot be read.
pub fn discover_sources(root: &Path) -> Result<Vec<PathBuf>, InternalError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| InternalError::Io {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| InternalError::Io {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Turns an absolute path into the workspace-relative forward-slash form
/// rules and baselines use.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the full lint pass over the workspace at `root`.
///
/// # Errors
///
/// [`InternalError`] when files cannot be read — never for findings.
pub fn run_workspace(
    root: &Path,
    cfg: &LintConfig,
    baseline: Option<&Baseline>,
) -> Result<Report, InternalError> {
    let files = discover_sources(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in files {
        let rel = relative_path(root, &path);
        let src = fs::read_to_string(&path).map_err(|e| InternalError::Io {
            path: rel.clone(),
            detail: e.to_string(),
        })?;
        sources.push((rel, src));
    }
    Ok(run_sources(&sources, cfg, baseline))
}

/// Runs the full lint pass — token-local rules plus the R8–R10 semantic
/// passes — over an in-memory workspace. Fixture tests and the serve
/// lock-diff test use this directly.
pub fn run_sources(
    sources: &[(String, String)],
    cfg: &LintConfig,
    baseline: Option<&Baseline>,
) -> Report {
    let started = Instant::now();
    let analyses: Vec<FileAnalysis<'_>> = sources
        .iter()
        .map(|(rel, src)| FileAnalysis::new(rel, src))
        .collect();

    let mut all: Vec<Finding> = Vec::new();
    for fa in &analyses {
        all.extend(check_file(fa, cfg));
    }
    let sem = semantic::analyze(&analyses, cfg);
    all.extend(sem.findings);

    let mut report = Report {
        files_scanned: analyses.len(),
        stats: RunStats {
            files: analyses.len(),
            items: sem.items,
            call_edges: sem.call_edges,
            wall_ms: 0,
        },
        lock_graph: sem.lock_graph,
        ..Report::default()
    };

    let mut matched = vec![0usize; baseline.map(|b| b.entries.len()).unwrap_or(0)];
    for finding in all {
        let line_text = analyses
            .iter()
            .find(|fa| fa.rel == finding.file)
            .map(|fa| fa.lines.line_text(fa.src, finding.line))
            .unwrap_or("");
        let suppressed = baseline.map(|b| {
            let mut hit = false;
            for (i, e) in b.entries.iter().enumerate() {
                if e.matches(&finding, line_text) {
                    matched[i] += 1;
                    hit = true;
                }
            }
            hit
        });
        if suppressed == Some(true) {
            report.baseline_suppressed += 1;
        } else {
            report.findings.push(finding);
        }
    }
    if let Some(b) = baseline {
        for (i, e) in b.entries.iter().enumerate() {
            if matched[i] == 0 {
                report.stale_baseline.push(format!(
                    "stale baseline entry (line {}): {} in {} — remove it",
                    e.defined_at,
                    e.rule.code(),
                    e.file
                ));
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    report.stats.wall_ms = started.elapsed().as_millis();
    report
}

/// Convenience: lints a single in-memory file with the token-local rules
/// only (fixture tests use this).
pub fn lint_source(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    check_file(&FileAnalysis::new(rel, src), cfg)
}
