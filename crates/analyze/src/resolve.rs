//! Best-effort name resolution across the parsed workspace.
//!
//! Rust name resolution in full needs type inference; the semantic passes
//! need much less. This resolver handles, in priority order:
//!
//! 1. `Type::method(…)` paths via inherent-impl lookup (trait impls on
//!    the same type head count too);
//! 2. free-function paths — same file, then same crate, then through the
//!    file's `use` aliases (`use aq_circuits::{grover, qft}` makes a bare
//!    `grover(…)` resolve into `crates/circuits`), then a unique global
//!    name;
//! 3. method calls by receiver shape: `self.m()` through the enclosing
//!    impl, `x.field.m()` through a workspace-wide field-name → type-head
//!    table, `STATIC.m()` through the static table, and finally a *unique*
//!    global method name for simple receivers.
//!
//! Anything ambiguous or computed (`expr[i].push(…)`) stays unresolved —
//! the passes prefer missing an edge to inventing one, and the soundness
//! caveats are documented in DESIGN.md §11. Calls into `std` resolve to
//! nothing because `std` items are not in the index.

use std::collections::HashMap;

use crate::parser::{FnDef, ParsedFile, Recv};

/// Method names the unique-global fallback refuses to resolve: they
/// collide with ubiquitous std-collection / std-sync methods, so a
/// workspace type happening to define one (e.g. `Manager::swap`) must
/// not swallow every `vec.swap(…)` in sight.
const STD_METHOD_NAMES: &[&str] = &[
    "swap",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "take",
    "clone",
    "iter",
    "iter_mut",
    "next",
    "extend",
    "contains",
    "contains_key",
    "drain",
    "retain",
    "sort",
    "split",
    "join",
    "send",
    "recv",
    "read",
    "write",
    "lock",
    "flush",
    "wait",
    "abs",
    "min",
    "max",
    "entry",
    "keys",
    "values",
    "map",
    "filter",
    "count",
    "find",
    "last",
    "first",
    "rev",
    "zip",
    "sum",
    "collect",
    "clamp",
    "to_string",
    "parse",
    "new",
    "default",
];

/// Identifies one function across the workspace: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// The cross-file symbol index built from every [`ParsedFile`].
#[derive(Debug)]
pub struct Workspace<'p> {
    /// The parsed files, in the order their indices refer to.
    pub files: &'p [ParsedFile],
    free_by_name: HashMap<&'p str, Vec<FnId>>,
    methods_by_owner: HashMap<(&'p str, &'p str), Vec<FnId>>,
    methods_by_name: HashMap<&'p str, Vec<FnId>>,
    field_types: HashMap<&'p str, Vec<&'p str>>,
    static_types: HashMap<&'p str, &'p str>,
}

/// Maps an extern-crate path segment (`aq_circuits`) to its workspace
/// crate directory (`circuits`). `aq_dd` lives in `crates/core`.
fn crate_dir_of_extern(seg: &str) -> Option<&str> {
    match seg.strip_prefix("aq_")? {
        "dd" => Some("core"),
        other => Some(other),
    }
}

impl<'p> Workspace<'p> {
    /// Builds the index.
    pub fn build(files: &'p [ParsedFile]) -> Workspace<'p> {
        let mut ws = Workspace {
            files,
            free_by_name: HashMap::new(),
            methods_by_owner: HashMap::new(),
            methods_by_name: HashMap::new(),
            field_types: HashMap::new(),
            static_types: HashMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                let id = (fi, gi);
                match &g.owner {
                    None => ws.free_by_name.entry(&g.name).or_default().push(id),
                    Some(owner) => {
                        ws.methods_by_owner
                            .entry((owner.as_str(), &g.name))
                            .or_default()
                            .push(id);
                        ws.methods_by_name.entry(&g.name).or_default().push(id);
                    }
                }
            }
            for fd in &f.fields {
                let types = ws.field_types.entry(fd.name.as_str()).or_default();
                if !types.contains(&fd.type_head.as_str()) {
                    types.push(&fd.type_head);
                }
            }
            for sd in &f.statics {
                ws.static_types
                    .entry(sd.name.as_str())
                    .or_insert(&sd.type_head);
            }
        }
        ws
    }

    /// The function a [`FnId`] points at.
    pub fn fn_def(&self, id: FnId) -> &'p FnDef {
        &self.files[id.0].fns[id.1]
    }

    /// The workspace-relative path the function lives in.
    pub fn rel_of(&self, id: FnId) -> &'p str {
        &self.files[id.0].rel
    }

    fn free_in_crate(&self, name: &str, crate_name: &str) -> Vec<FnId> {
        self.free_by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&(fi, _)| self.files[fi].crate_name == crate_name)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolves a path call (`foo(…)`, `Type::m(…)`, `a::b::c(…)`) made
    /// from `file_i` inside an impl of `owner`. Empty result =
    /// unresolved.
    pub fn resolve_call(&self, file_i: usize, owner: Option<&str>, path: &[String]) -> Vec<FnId> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        let file = &self.files[file_i];
        if path.len() >= 2 {
            let qual = &path[path.len() - 2];
            // `Self::m` / `Type::m`: inherent-impl lookup first
            if qual == "Self" {
                if let Some(o) = owner {
                    if let Some(ids) = self.methods_by_owner.get(&(o, name.as_str())) {
                        return ids.clone();
                    }
                }
                return Vec::new();
            }
            if let Some(ids) = self.methods_by_owner.get(&(qual.as_str(), name.as_str())) {
                return ids.clone();
            }
            // module-qualified free fn: `crate::x::f`, `aq_sim::f`, …
            let head = path[0].as_str();
            if head == "crate" || head == "self" || head == "super" {
                let same = self.free_in_crate(name, &file.crate_name);
                if !same.is_empty() {
                    return same;
                }
            }
            if let Some(dir) = crate_dir_of_extern(head) {
                let ids = self.free_in_crate(name, dir);
                if !ids.is_empty() {
                    return ids;
                }
            }
            // a module path within the current crate (`qasm::parse`):
            // fall back to a same-crate free fn of that name
            let same = self.free_in_crate(name, &file.crate_name);
            if !same.is_empty() && (head.chars().next().is_some_and(char::is_lowercase)) {
                return same;
            }
            return Vec::new();
        }
        // bare name: same file → same crate → use-alias → unique global
        if let Some(ids) = self.free_by_name.get(name.as_str()) {
            let same_file: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|&(fi, _)| fi == file_i)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate = self.free_in_crate(name, &file.crate_name);
            if !same_crate.is_empty() {
                return same_crate;
            }
        }
        for u in &file.uses {
            if u.alias == *name {
                if let Some(dir) = crate_dir_of_extern(&u.crate_seg) {
                    let ids = self.free_in_crate(&u.target, dir);
                    if !ids.is_empty() {
                        return ids;
                    }
                }
                if u.crate_seg == "crate" || u.crate_seg == "super" || u.crate_seg == "self" {
                    let ids = self.free_in_crate(&u.target, &file.crate_name);
                    if !ids.is_empty() {
                        return ids;
                    }
                }
            }
        }
        match self.free_by_name.get(name.as_str()) {
            Some(ids) if ids.len() == 1 => ids.clone(),
            _ => Vec::new(),
        }
    }

    /// Resolves a method call `recv.name(…)` made inside an impl of
    /// `owner`. Empty result = unresolved.
    pub fn resolve_method(&self, owner: Option<&str>, recv: &Recv, name: &str) -> Vec<FnId> {
        if let Recv::Simple(id) = recv {
            if id == "self" || id == "Self" {
                if let Some(o) = owner {
                    if let Some(ids) = self.methods_by_owner.get(&(o, name)) {
                        return ids.clone();
                    }
                }
            } else {
                if let Some(types) = self.field_types.get(id.as_str()) {
                    let mut out = Vec::new();
                    for ty in types {
                        if let Some(ids) = self.methods_by_owner.get(&(*ty, name)) {
                            out.extend_from_slice(ids);
                        }
                    }
                    if !out.is_empty() {
                        return out;
                    }
                }
                if let Some(ty) = self.static_types.get(id.as_str()) {
                    if let Some(ids) = self.methods_by_owner.get(&(*ty, name)) {
                        return ids.clone();
                    }
                }
            }
            // unique global method name — simple receivers only, and
            // never for names std collections also have
            if STD_METHOD_NAMES.contains(&name) {
                return Vec::new();
            }
            if let Some(ids) = self.methods_by_name.get(name) {
                let owners: Vec<&str> = {
                    let mut o: Vec<&str> = ids
                        .iter()
                        .map(|&id| self.fn_def(id).owner.as_deref().unwrap_or(""))
                        .collect();
                    o.sort_unstable();
                    o.dedup();
                    o
                };
                if owners.len() == 1 {
                    return ids.clone();
                }
            }
        }
        Vec::new()
    }
}
