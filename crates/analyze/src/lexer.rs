//! A hand-rolled lexer for (a practical superset of) Rust source text.
//!
//! The rule engine needs token-accurate answers to questions like "is this
//! `unwrap` an identifier or part of a string literal?", so a line-oriented
//! grep is not good enough. This lexer handles the constructs that defeat
//! naive scanners:
//!
//! * nested block comments (`/* outer /* inner */ still outer */`),
//! * raw strings with arbitrary hash fences (`r#"…"#`, `r##"…"##`),
//! * byte strings and raw byte strings (`b"…"`, `br#"…"#`),
//! * lifetimes vs. char literals (`'a` vs. `'a'` vs. `'\u{1F600}'`),
//! * raw identifiers (`r#type`),
//! * numeric literals with underscores, radix prefixes, exponents and
//!   type suffixes (`1_000u64`, `0xFF`, `1.5e-10`, `1f64`).
//!
//! Tokens carry byte spans only; use [`LineIndex`] to turn a byte offset
//! into a `line:column` pair when reporting. The lexer never fails: input
//! it cannot classify becomes [`TokKind::Unknown`] tokens, and unterminated
//! literals or comments extend to end-of-input.

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`).
    Ident,
    /// A raw identifier (`r#type`).
    RawIdent,
    /// A lifetime (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// A char literal (`'a'`, `'\n'`, `'\u{41}'`).
    Char,
    /// A byte literal (`b'x'`).
    Byte,
    /// A string literal (`"…"`).
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`).
    RawStr,
    /// A byte-string literal (`b"…"`).
    ByteStr,
    /// A raw byte-string literal (`br"…"`, `br#"…"#`).
    RawByteStr,
    /// An integer literal (any radix, with optional suffix).
    Int,
    /// A floating-point literal (`1.0`, `1e-10`, `2f64`).
    Float,
    /// Punctuation, possibly multi-character (`==`, `->`, `..=`).
    Punct,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment (nesting honoured).
    BlockComment,
    /// A byte sequence the lexer could not classify.
    Unknown,
}

/// One lexed token: a kind plus the byte span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The source text this token covers.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Maps byte offsets to 1-based `(line, column)` pairs.
#[derive(Debug, Clone)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// The 1-based line containing byte `offset`.
    pub fn line(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }

    /// The 1-based `(line, column)` of byte `offset` (column in bytes).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self.line(offset);
        let start = self.starts.get(line - 1).copied().unwrap_or(0);
        (line, offset.saturating_sub(start) + 1)
    }

    /// The full text of 1-based line `line` in `src` (without newline).
    pub fn line_text<'a>(&self, src: &'a str, line: usize) -> &'a str {
        if line == 0 || line > self.starts.len() {
            return "";
        }
        let start = self.starts[line - 1];
        let end = self
            .starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(src.len());
        src.get(start..end).unwrap_or("").trim_end_matches('\r')
    }
}

/// Multi-character punctuation, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    /// Consumes a `//` comment (cursor on the first `/`).
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    /// Consumes a possibly-nested `/* … */` comment (cursor on `/*`).
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.starts_with("/*") {
                depth += 1;
                self.pos += 2;
            } else if self.starts_with("*/") {
                self.pos += 2;
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.pos += 1;
            }
        }
        // unterminated: consumed to end of input
    }

    /// Consumes a `"…"` body with escapes (cursor just past the quote).
    fn string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            self.pos += 1;
            match b {
                b'\\' if self.peek(0).is_some() => self.pos += 1,
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Consumes `#…#"…"#…#` given the cursor sits on the first `#` or the
    /// opening quote; returns false if this is not a raw-string opener.
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.pos += hashes + 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut closing = 0usize;
                while closing < hashes && self.peek(1 + closing) == Some(b'#') {
                    closing += 1;
                }
                if closing == hashes {
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.pos += 1;
        }
        true // unterminated: consumed to end of input
    }

    fn ident_body(&mut self) {
        while let Some(b) = self.peek(0) {
            if !is_ident_continue(b) {
                break;
            }
            self.pos += 1;
        }
    }

    /// Consumes a char literal body after the opening `'`; returns true if
    /// it really was a char literal, false for a lifetime.
    fn char_or_lifetime(&mut self) -> TokKind {
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 1;
                match self.peek(0) {
                    Some(b'u') if self.peek(1) == Some(b'{') => {
                        self.pos += 2;
                        while let Some(b) = self.peek(0) {
                            self.pos += 1;
                            if b == b'}' {
                                break;
                            }
                        }
                    }
                    Some(b'x') => self.pos += (3).min(self.bytes.len() - self.pos),
                    Some(_) => self.pos += 1,
                    None => {}
                }
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                TokKind::Char
            }
            Some(b) if is_ident_start(b) => {
                let mark = self.pos;
                self.ident_body();
                if self.peek(0) == Some(b'\'') {
                    // 'a' — a char literal after all
                    self.pos += 1;
                    TokKind::Char
                } else {
                    // 'a / 'static — a lifetime; keep the ident consumed
                    let _ = mark;
                    TokKind::Lifetime
                }
            }
            Some(_) => {
                // '+' and friends: single char then closing quote
                self.pos += 1;
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                    TokKind::Char
                } else {
                    TokKind::Unknown
                }
            }
            None => TokKind::Unknown,
        }
    }

    /// Consumes a numeric literal (cursor on the first digit); returns the
    /// kind (Int or Float).
    fn number(&mut self) -> TokKind {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        if radix_prefixed {
            self.pos += 2;
            while let Some(b) = self.peek(0) {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return TokKind::Int;
        }
        let mut float = false;
        while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b) if b.is_ascii_digit()) {
            float = true;
            self.pos += 1;
            while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                self.pos += 1;
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if matches!(self.peek(1 + sign), Some(b) if b.is_ascii_digit()) {
                float = true;
                self.pos += 1 + sign;
                while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                    self.pos += 1;
                }
            }
        }
        // type suffix (u8, i64, f32, usize, …)
        let suffix_start = self.pos;
        while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        if self.bytes[suffix_start..self.pos].starts_with(b"f32")
            || self.bytes[suffix_start..self.pos].starts_with(b"f64")
        {
            float = true;
        }
        if float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }
}

/// Lexes `src` into a token stream. Whitespace is dropped; comments are
/// kept (the rule engine reads suppression directives out of them).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.pos += 1;
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.line_comment();
                TokKind::LineComment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.block_comment();
                TokKind::BlockComment
            }
            b'r' if cur.peek(1) == Some(b'"') || cur.peek(1) == Some(b'#') => {
                cur.pos += 1;
                if cur.raw_string_body() {
                    TokKind::RawStr
                } else if matches!(cur.peek(0), Some(b'#'))
                    && matches!(cur.peek(1), Some(n) if is_ident_start(n))
                {
                    // r#ident raw identifier
                    cur.pos += 2;
                    cur.ident_body();
                    TokKind::RawIdent
                } else {
                    cur.ident_body();
                    TokKind::Ident
                }
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.pos += 2;
                let k = cur.char_or_lifetime();
                if k == TokKind::Char {
                    TokKind::Byte
                } else {
                    TokKind::Unknown
                }
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.pos += 2;
                cur.string_body();
                TokKind::ByteStr
            }
            b'b' if cur.peek(1) == Some(b'r') && matches!(cur.peek(2), Some(b'"') | Some(b'#')) => {
                cur.pos += 2;
                if cur.raw_string_body() {
                    TokKind::RawByteStr
                } else {
                    cur.ident_body();
                    TokKind::Ident
                }
            }
            b'"' => {
                cur.pos += 1;
                cur.string_body();
                TokKind::Str
            }
            b'\'' => {
                cur.pos += 1;
                cur.char_or_lifetime()
            }
            b'0'..=b'9' => cur.number(),
            _ if is_ident_start(b) => {
                cur.ident_body();
                TokKind::Ident
            }
            _ => {
                let mut matched = None;
                for p in PUNCTS {
                    if cur.starts_with(p) {
                        matched = Some(p.len());
                        break;
                    }
                }
                match matched {
                    Some(n) => {
                        cur.pos += n;
                        TokKind::Punct
                    }
                    None => {
                        cur.pos += 1;
                        if b.is_ascii_punctuation() {
                            TokKind::Punct
                        } else {
                            TokKind::Unknown
                        }
                    }
                }
            }
        };
        debug_assert!(cur.pos > start, "lexer must always advance");
        if cur.pos == start {
            cur.pos += 1; // defensive: never loop forever on weird input
        }
        out.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("pub fn f(x: u32) -> bool { x == 3 }");
        assert!(toks.contains(&(TokKind::Ident, "pub")));
        assert!(toks.contains(&(TokKind::Punct, "==")));
        assert!(toks.contains(&(TokKind::Punct, "->")));
        assert!(toks.contains(&(TokKind::Int, "3")));
    }

    #[test]
    fn line_index_round_trips() {
        let src = "ab\ncd\nef";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(7), (3, 2));
        assert_eq!(idx.line_text(src, 2), "cd");
    }
}
