//! The committed baseline file (`lint-baseline.toml`): tracked legacy
//! findings that do not fail CI, so new violations are caught while old
//! ones are paid down deliberately.
//!
//! The format is a hand-parsed TOML subset — an array of `[[suppress]]`
//! tables with string and integer values:
//!
//! ```toml
//! # Every entry needs a `reason`; entries that stop matching anything
//! # are reported as stale so the file shrinks over time.
//! [[suppress]]
//! rule = "R1"
//! file = "crates/sim/src/legacy.rs"
//! line = 42            # optional: pin to a line
//! contains = "unwrap"  # optional: pin to source text on the found line
//! reason = "tracked: migrating to try_run in the next PR"
//! ```
//!
//! Matching is by rule + file, then by the optional `line` and `contains`
//! pins. Prefer `contains` over `line`: it survives unrelated edits.

use crate::rules::{Finding, RuleId, REGISTRY};

/// One `[[suppress]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressEntry {
    /// Rule being suppressed.
    pub rule: RuleId,
    /// Workspace-relative file the finding lives in.
    pub file: String,
    /// Optional 1-based line pin.
    pub line: Option<usize>,
    /// Optional substring pin against the found source line.
    pub contains: Option<String>,
    /// Mandatory justification.
    pub reason: String,
    /// Line in the baseline file (for stale reporting).
    pub defined_at: usize,
}

impl SuppressEntry {
    /// Whether this entry suppresses `f` (whose source line text is
    /// `line_text`).
    pub fn matches(&self, f: &Finding, line_text: &str) -> bool {
        self.rule == f.rule
            && self.file == f.file
            && self.line.map(|l| l == f.line).unwrap_or(true)
            && self
                .contains
                .as_deref()
                .map(|s| line_text.contains(s))
                .unwrap_or(true)
    }
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The suppress entries, in file order.
    pub entries: Vec<SuppressEntry>,
}

/// A half-built entry during parsing.
#[derive(Debug, Default)]
struct Partial {
    rule: Option<RuleId>,
    file: Option<String>,
    line: Option<usize>,
    contains: Option<String>,
    reason: Option<String>,
    defined_at: usize,
}

impl Partial {
    fn finish(self) -> Result<SuppressEntry, String> {
        let at = self.defined_at;
        Ok(SuppressEntry {
            rule: self
                .rule
                .ok_or(format!("baseline entry at line {at}: missing `rule`"))?,
            file: self
                .file
                .ok_or(format!("baseline entry at line {at}: missing `file`"))?,
            line: self.line,
            contains: self.contains,
            reason: self.reason.filter(|r| !r.trim().is_empty()).ok_or(format!(
                "baseline entry at line {at}: missing `reason` — every suppression must be justified"
            ))?,
            defined_at: at,
        })
    }
}

impl Baseline {
    /// Parses the baseline text.
    ///
    /// # Errors
    ///
    /// A message naming the offending line; malformed baselines are an
    /// internal error (exit code 2), never a silent pass.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut current: Option<Partial> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[suppress]]" {
                if let Some(p) = current.take() {
                    entries.push(p.finish()?);
                }
                current = Some(Partial {
                    defined_at: lineno,
                    ..Partial::default()
                });
                continue;
            }
            if line.starts_with("[[") {
                return Err(format!(
                    "line {lineno}: unknown table `{line}` (only [[suppress]] is supported)"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let Some(p) = current.as_mut() else {
                return Err(format!(
                    "line {lineno}: `{}` outside any [[suppress]] entry",
                    key.trim()
                ));
            };
            let value = strip_comment(value).trim();
            match key.trim() {
                "rule" => {
                    let s = parse_string(value, lineno)?;
                    p.rule = Some(RuleId::from_code(&s).ok_or_else(|| {
                        let known: Vec<&str> = REGISTRY.iter().map(|r| r.code).collect();
                        format!(
                            "line {lineno}: unknown rule `{s}` (expected one of {})",
                            known.join(", ")
                        )
                    })?);
                }
                "file" => p.file = Some(parse_string(value, lineno)?),
                "contains" => p.contains = Some(parse_string(value, lineno)?),
                "reason" => p.reason = Some(parse_string(value, lineno)?),
                "line" => {
                    p.line = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: `line` must be an integer, got `{value}`")
                    })?)
                }
                other => {
                    return Err(format!("line {lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(p) = current.take() {
            entries.push(p.finish()?);
        }
        Ok(Baseline { entries })
    }

    /// Renders findings as baseline entries (the `--write-baseline`
    /// starting point; reasons must then be filled in by hand).
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# lint-baseline.toml — tracked legacy findings (see DESIGN.md, \"Static analysis\").\n\
             # Every entry MUST carry a `reason`. Keep this file shrinking: new code never\n\
             # adds entries; it fixes the finding or justifies an inline allow instead.\n",
        );
        for f in findings {
            out.push_str(&format!(
                "\n[[suppress]]\nrule = \"{}\"\nfile = \"{}\"\nline = {}\nreason = \"FIXME: justify or fix\"\n",
                f.rule.code(),
                f.file,
                f.line
            ));
        }
        out
    }
}

/// Strips a trailing `# comment` that is not inside a quoted string.
fn strip_comment(value: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in value.char_indices() {
        match c {
            '\\' if in_str && !escape => {
                escape = true;
                continue;
            }
            '"' if !escape => in_str = !in_str,
            '#' if !in_str => return &value[..i],
            _ => {}
        }
        escape = false;
    }
    value
}

/// Parses a double-quoted TOML string with `\"` and `\\` escapes.
fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(format!(
            "line {lineno}: expected a quoted string, got `{value}`"
        ))?;
    let mut out = String::with_capacity(inner.len());
    let mut escape = false;
    for c in inner.chars() {
        if escape {
            match c {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            }
            escape = false;
        } else if c == '\\' {
            escape = true;
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding(rule: RuleId, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            severity: Severity::Deny,
            file: file.into(),
            line,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_matches_entries() {
        let text = r#"
# header comment
[[suppress]]
rule = "R1"
file = "crates/x/src/a.rs"
contains = "unwrap"  # trailing comment
reason = "legacy path, tracked in ISSUE 9"

[[suppress]]
rule = "R4"
file = "crates/x/src/b.rs"
line = 7
reason = "checked upstream"
"#;
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.entries.len(), 2);
        assert!(b.entries[0].matches(
            &finding(RuleId::NoPanicPath, "crates/x/src/a.rs", 3),
            "x.unwrap()"
        ));
        assert!(!b.entries[0].matches(
            &finding(RuleId::NoPanicPath, "crates/x/src/a.rs", 3),
            "x.expect()"
        ));
        assert!(b.entries[1].matches(&finding(RuleId::NarrowingCast, "crates/x/src/b.rs", 7), ""));
        assert!(!b.entries[1].matches(&finding(RuleId::NarrowingCast, "crates/x/src/b.rs", 8), ""));
    }

    #[test]
    fn rejects_unjustified_or_malformed_entries() {
        let missing_reason = "[[suppress]]\nrule = \"R1\"\nfile = \"a.rs\"\n";
        assert!(Baseline::parse(missing_reason)
            .unwrap_err()
            .contains("reason"));
        let bad_rule = "[[suppress]]\nrule = \"R99\"\nfile = \"a.rs\"\nreason = \"x\"\n";
        assert!(Baseline::parse(bad_rule)
            .unwrap_err()
            .contains("unknown rule"));
        let bad_key = "[[suppress]]\nrule = \"R1\"\nfoo = \"1\"\n";
        assert!(Baseline::parse(bad_key)
            .unwrap_err()
            .contains("unknown key"));
        let orphan = "rule = \"R1\"\n";
        assert!(Baseline::parse(orphan).unwrap_err().contains("outside"));
    }

    #[test]
    fn empty_baseline_is_fine() {
        assert_eq!(
            Baseline::parse("# nothing here\n").expect("ok").entries,
            vec![]
        );
    }
}
