//! The rule engine: file analysis (test-region detection, suppression
//! directives) plus the five domain-specific rule families.
//!
//! | Rule | Guards                                                          |
//! |------|-----------------------------------------------------------------|
//! | R1   | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | R2   | infallible public APIs with a `try_*` sibling are thin delegates |
//! | R3   | no unbounded `HashMap`/`BTreeMap` caches in hot-path modules     |
//! | R4   | no bare `as` narrowing casts in snapshot / wire-protocol code    |
//! | R5   | no direct `f64` `==`/`!=` against float literals outside the epsilon module |
//! | R6   | no bare `thread::sleep` in serve code outside the backoff module |
//! | R7   | no unseeded randomness (`thread_rng`/`from_entropy`/`OsRng`/…) in sim/serve code |
//! | R8   | no panic source reachable from a serve entry root outside `catch_unwind` |
//! | R9   | static lock acquisition order must form a DAG                    |
//! | R10  | wire-protocol serialize and parse sides must agree field-by-field |
//! | A0   | suppression directives must carry a justification                |
//!
//! R1–R7 and A0 are token-local; R8–R10 are the whole-workspace semantic
//! passes (see `semantic.rs`), built on the parser / resolver / call
//! graph. Every rule lives in [`REGISTRY`] — `--list-rules`, code
//! parsing, and the fixture suite all derive from that one table.
//!
//! R1 has one built-in idiom exemption: the sanctioned infallible-wrapper
//! body `self.try_x(…).unwrap_or_else(|e| panic!("{e}"))` — that `panic!`
//! is the documented contract R2 checks for, not a stray panic.
//!
//! Suppression is explicit and justified: either an inline
//! `// aq-lint: allow(R1): <reason>` on the offending line (or the line
//! above), or a per-entry-commented block in `lint-baseline.toml`.

use crate::lexer::{lex, LineIndex, TokKind, Token};

/// Identifies a rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No panic-family calls in non-test library code.
    NoPanicPath,
    /// Infallible public APIs must delegate to their `try_*` sibling.
    InfallibleDelegate,
    /// No unbounded map caches in hot-path modules.
    UnboundedCache,
    /// No bare narrowing `as` casts in snapshot / wire code.
    NarrowingCast,
    /// No direct float-literal `==`/`!=` outside the epsilon module.
    FloatEq,
    /// No bare `thread::sleep` in serve code outside the backoff module.
    BareSleep,
    /// No unseeded randomness in sim/serve code — sampling and backoff
    /// must stay reproducible from an explicit seed.
    UnseededRandom,
    /// No panic source (panic-family macro, `panic_any`, `.unwrap()`/
    /// `.expect()`, scoped indexing) reachable from a serve entry root
    /// outside `catch_unwind` — the call-graph pass behind `.unwrap()`'s
    /// token-local R1.
    PanicReach,
    /// The static held→acquired lock graph must stay acyclic.
    StaticLockOrder,
    /// Every wire field/verb written must be parsed and vice versa.
    WireSchema,
    /// Malformed suppression directive (missing justification).
    BadSuppression,
}

/// One row of the rule registry: the single source of truth for rule
/// codes and descriptions. `--list-rules`, `RuleId::from_code`, the
/// baseline parser's error text, and the fixture-directory test all
/// derive from this table, so they cannot drift apart.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule.
    pub rule: RuleId,
    /// Stable short code (`R1`…`R10`, `A0`).
    pub code: &'static str,
    /// One-line description.
    pub describe: &'static str,
}

/// Every rule the analyzer knows, in listing order.
pub const REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        rule: RuleId::NoPanicPath,
        code: "R1",
        describe: "no unwrap()/expect()/panic!/todo!/unimplemented! in non-test library code",
    },
    RuleInfo {
        rule: RuleId::InfallibleDelegate,
        code: "R2",
        describe: "infallible public APIs with a try_* sibling must be thin delegates to it",
    },
    RuleInfo {
        rule: RuleId::UnboundedCache,
        code: "R3",
        describe: "no unbounded HashMap/BTreeMap caches in hot-path modules (direct-mapped only)",
    },
    RuleInfo {
        rule: RuleId::NarrowingCast,
        code: "R4",
        describe:
            "no bare `as` narrowing casts in snapshot/wire code (use try_from or a checked helper)",
    },
    RuleInfo {
        rule: RuleId::FloatEq,
        code: "R5",
        describe: "no direct f64 ==/!= against float literals outside the epsilon module",
    },
    RuleInfo {
        rule: RuleId::BareSleep,
        code: "R6",
        describe:
            "no bare thread::sleep in serve code outside the backoff module (use backoff::sleep)",
    },
    RuleInfo {
        rule: RuleId::UnseededRandom,
        code: "R7",
        describe:
            "no unseeded randomness (thread_rng/from_entropy/OsRng/SeedableRng::from_os_rng) \
                   in sim/serve code; draw from an explicitly seeded generator",
    },
    RuleInfo {
        rule: RuleId::PanicReach,
        code: "R8",
        describe: "no panic source reachable from a serve entry root outside catch_unwind \
                   (call-graph pass; reports the full root → panic chain)",
    },
    RuleInfo {
        rule: RuleId::StaticLockOrder,
        code: "R9",
        describe: "static DebugMutex/DebugRwLock acquisition order must form a DAG \
                   (held-set propagation through the call graph)",
    },
    RuleInfo {
        rule: RuleId::WireSchema,
        code: "R10",
        describe: "wire-protocol serialize and parse sides must agree: every written \
                   field/verb is parsed somewhere and vice versa",
    },
    RuleInfo {
        rule: RuleId::BadSuppression,
        code: "A0",
        describe: "suppression directives must carry a justification",
    },
];

impl RuleId {
    /// Stable short code (`R1`…`R10`, `A0`), from the registry.
    pub fn code(&self) -> &'static str {
        REGISTRY
            .iter()
            .find(|r| r.rule == *self)
            .map(|r| r.code)
            .unwrap_or("??")
    }

    /// Parses a short code, from the registry.
    pub fn from_code(s: &str) -> Option<RuleId> {
        REGISTRY.iter().find(|r| r.code == s).map(|r| r.rule)
    }

    /// One-line description (for `--list-rules`), from the registry.
    pub fn describe(&self) -> &'static str {
        REGISTRY
            .iter()
            .find(|r| r.rule == *self)
            .map(|r| r.describe)
            .unwrap_or("")
    }
}

/// How severe a finding is. Every built-in rule reports at `Deny`; the
/// CLI's `--deny` flag decides whether deny-level findings fail the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory.
    Warn,
    /// Fails the run under `--deny`.
    Deny,
}

impl Severity {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// `file:line:col: RULE severity: message` — the grep-able report line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.col,
            self.rule.code(),
            self.severity.as_str(),
            self.message
        )
    }
}

/// Scoping configuration for one workspace.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes R1 skips entirely, each with a committed justification.
    pub r1_allow_prefixes: Vec<(String, String)>,
    /// Directory prefixes R2 applies to (library code with try_* twins).
    pub r2_scope: Vec<String>,
    /// Maximum code-token count for an infallible wrapper body.
    pub r2_max_body_tokens: usize,
    /// Hot-path files R3 applies to.
    pub r3_hot_files: Vec<String>,
    /// Snapshot / wire-protocol files R4 applies to.
    pub r4_wire_files: Vec<String>,
    /// Files exempt from R5 (the epsilon module itself).
    pub r5_exempt_files: Vec<String>,
    /// Directory prefixes R6 applies to (the serving stack, `src/bin/`
    /// entry points included — CLI retry loops must not busy-sleep
    /// either).
    pub r6_scope: Vec<String>,
    /// Files exempt from R6 (the backoff module: the one sanctioned
    /// `thread::sleep` call site).
    pub r6_exempt_files: Vec<String>,
    /// Directory prefixes R7 applies to: code whose randomness must be
    /// reproducible from an explicit seed (the sampler and the serving
    /// stack, `src/bin/` entry points included).
    pub r7_scope: Vec<String>,
    /// R8 entry roots: qualified (`ServeCore::handle`) or bare
    /// (`worker_loop`) function names panic-reachability starts from.
    /// Empty disables the pass.
    pub r8_roots: Vec<String>,
    /// Path prefixes whose index expressions count as R8 panic sources
    /// (the serving stack, where a stray `[i]` can kill a worker).
    pub r8_index_prefixes: Vec<String>,
    /// Files whose lock-method calls R9 ignores (the lock wrappers
    /// themselves: their internal `.lock()`s are the instrumentation,
    /// not acquisition sites).
    pub r9_exempt_files: Vec<String>,
    /// Files whose non-test string-key writes R10 treats as the wire
    /// serialize side. Empty disables the pass.
    pub r10_writer_files: Vec<String>,
    /// Files whose non-test key reads R10 treats as the wire parse side.
    pub r10_parser_files: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig::for_workspace()
    }
}

impl LintConfig {
    /// The aqudd workspace policy.
    pub fn for_workspace() -> LintConfig {
        LintConfig {
            r1_allow_prefixes: vec![
                (
                    "crates/testutil/".into(),
                    "test harness crate: panicking assertions are its job".into(),
                ),
                (
                    "crates/bench/".into(),
                    "operator-driven figure/bench harness, not served library code".into(),
                ),
            ],
            r2_scope: vec!["crates/core/src/".into(), "crates/sim/src/".into()],
            r2_max_body_tokens: 100,
            r3_hot_files: vec![
                "crates/core/src/manager.rs".into(),
                "crates/core/src/cache.rs".into(),
                "crates/core/src/unique.rs".into(),
                "crates/core/src/ops.rs".into(),
                "crates/core/src/weight.rs".into(),
                "crates/core/src/numeric.rs".into(),
                "crates/core/src/algebraic.rs".into(),
                "crates/core/src/gates.rs".into(),
                "crates/core/src/wops.rs".into(),
            ],
            r4_wire_files: vec![
                "crates/core/src/snapshot.rs".into(),
                "crates/sim/src/checkpoint.rs".into(),
                "crates/serve/src/protocol.rs".into(),
                "crates/serve/src/json.rs".into(),
                "crates/serve/src/server.rs".into(),
            ],
            r5_exempt_files: vec!["crates/rings/src/complex.rs".into()],
            r6_scope: vec!["crates/serve/src/".into()],
            r6_exempt_files: vec!["crates/serve/src/backoff.rs".into()],
            r7_scope: vec!["crates/sim/src/".into(), "crates/serve/src/".into()],
            r8_roots: vec![
                "ServeCore::handle".into(),
                "ServeCore::supervise".into(),
                "ServeCore::poll_wait".into(),
                "ServeCore::begin_drain".into(),
                "ServeCore::try_drain".into(),
                "ServeCore::begin_shutdown".into(),
                "ServeCore::try_complete_shutdown".into(),
                "Server::run".into(),
                "worker_loop".into(),
                "run_job".into(),
            ],
            r8_index_prefixes: vec!["crates/serve/src/".into()],
            r9_exempt_files: vec!["crates/serve/src/lockaudit.rs".into()],
            r10_writer_files: vec![
                "crates/serve/src/protocol.rs".into(),
                "crates/serve/src/service.rs".into(),
                "crates/serve/src/bin/aq-cli.rs".into(),
            ],
            r10_parser_files: vec!["crates/serve/src/protocol.rs".into()],
        }
    }

    /// Whether `rel` is test-or-tooling code exempt from library rules:
    /// integration tests, benches, examples, and `src/bin/` entry points.
    pub fn is_non_library_path(rel: &str) -> bool {
        let parts: Vec<&str> = rel.split('/').collect();
        parts.iter().any(|p| {
            matches!(*p, "tests" | "benches" | "examples") || (*p == "bin" && rel.contains("/src/"))
        })
    }
}

/// An inline suppression directive parsed from a comment.
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    rules: Vec<RuleId>,
    has_reason: bool,
}

/// A lexed file plus everything the rules need to scope themselves.
#[derive(Debug)]
pub struct FileAnalysis<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Source text.
    pub src: &'a str,
    /// All tokens (comments included).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Byte spans of `#[cfg(test)]`-gated items and `#[test]` functions.
    pub test_spans: Vec<(usize, usize)>,
    /// Line index for reporting.
    pub lines: LineIndex,
    allows: Vec<Allow>,
}

impl<'a> FileAnalysis<'a> {
    /// Lexes and pre-analyses one file.
    pub fn new(rel: &'a str, src: &'a str) -> FileAnalysis<'a> {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let lines = LineIndex::new(src);
        let mut fa = FileAnalysis {
            rel,
            src,
            tokens,
            code,
            test_spans: Vec::new(),
            lines,
            allows: Vec::new(),
        };
        fa.find_test_spans();
        fa.find_allows();
        fa
    }

    fn code_tok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    fn code_text(&self, ci: usize) -> &str {
        self.code_tok(ci).map(|t| t.text(self.src)).unwrap_or("")
    }

    /// Detects items gated behind `#[cfg(test)]` (or annotated `#[test]`)
    /// and records their byte spans, attribute included.
    fn find_test_spans(&mut self) {
        let mut spans = Vec::new();
        let mut ci = 0;
        while ci < self.code.len() {
            if self.code_text(ci) == "#" && self.code_text(ci + 1) == "[" {
                let attr_start = self.code_tok(ci).map(|t| t.start).unwrap_or(0);
                // `#[cfg_attr(test, …)]` conditionally *adds an attribute*;
                // the item itself still compiles in non-test builds, so it
                // is not a test gate.
                let is_cfg_attr = self.code_text(ci + 2) == "cfg_attr";
                // find the matching `]`, tracking bracket depth
                let mut j = ci + 1;
                let mut depth = 0usize;
                let mut is_test = false;
                let mut prev2: [&str; 2] = ["", ""];
                while let Some(t) = self.code_tok(j) {
                    let text = t.text(self.src);
                    match text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if t.kind == TokKind::Ident
                        && text == "test"
                        && !(prev2[0] == "not" && prev2[1] == "(")
                    {
                        is_test = true;
                    }
                    prev2 = [prev2[1], text];
                    j += 1;
                }
                if is_test && !is_cfg_attr {
                    // skip any further attributes, then span the item
                    let mut k = j + 1;
                    while self.code_text(k) == "#" && self.code_text(k + 1) == "[" {
                        let mut d = 0usize;
                        let mut m = k + 1;
                        while let Some(t) = self.code_tok(m) {
                            match t.text(self.src) {
                                "[" => d += 1,
                                "]" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        k = m + 1;
                    }
                    if let Some(end) = self.item_end(k) {
                        spans.push((attr_start, end));
                        // continue scanning after the item
                        while ci < self.code.len()
                            && self.code_tok(ci).map(|t| t.end).unwrap_or(usize::MAX) <= end
                        {
                            ci += 1;
                        }
                        continue;
                    }
                }
                ci = j + 1;
                continue;
            }
            ci += 1;
        }
        self.test_spans = spans;
    }

    /// Byte offset one past the end of the item starting at code index
    /// `ci`: either the matching `}` of its first brace block, or the
    /// first top-level `;`.
    fn item_end(&self, ci: usize) -> Option<usize> {
        let mut j = ci;
        let mut paren = 0isize;
        while let Some(t) = self.code_tok(j) {
            match t.text(self.src) {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => return Some(t.end),
                "{" if paren == 0 => {
                    let mut depth = 0usize;
                    let mut k = j;
                    while let Some(b) = self.code_tok(k) {
                        match b.text(self.src) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    return Some(b.end);
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return Some(self.src.len());
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Parses `aq-lint: allow(R1, R4): reason` directives out of comments.
    fn find_allows(&mut self) {
        let mut allows = Vec::new();
        for t in self.tokens.iter().filter(|t| t.is_comment()) {
            let text = t.text(self.src);
            let Some(at) = text.find("aq-lint:") else {
                continue;
            };
            let rest = &text[at + "aq-lint:".len()..];
            let rest = rest.trim_start();
            let Some(inner) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = inner.find(')') else {
                continue;
            };
            let rules: Vec<RuleId> = inner[..close]
                .split(',')
                .filter_map(|s| RuleId::from_code(s.trim()))
                .collect();
            let after = inner[close + 1..].trim_start();
            let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
            allows.push(Allow {
                line: self.lines.line(t.start),
                rules,
                has_reason: reason.len() >= 8,
            });
        }
        self.allows = allows;
    }

    /// Whether byte offset `pos` lies inside test-gated code.
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Whether `rule` is suppressed at `line` by an inline directive on
    /// the same line or the line directly above.
    pub fn allowed(&self, rule: RuleId, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.has_reason && a.rules.contains(&rule) && (a.line == line || a.line + 1 == line)
        })
    }

    fn finding(&self, rule: RuleId, pos: usize, message: String, out: &mut Vec<Finding>) {
        let (line, col) = self.lines.line_col(pos);
        if self.allowed(rule, line) {
            return;
        }
        out.push(Finding {
            rule,
            severity: Severity::Deny,
            file: self.rel.to_string(),
            line,
            col,
            message,
        });
    }
}

/// Runs every applicable rule over one analysed file.
pub fn check_file(fa: &FileAnalysis<'_>, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    check_suppressions(fa, &mut out);
    let non_library = LintConfig::is_non_library_path(fa.rel);
    if !non_library {
        let r1_allowed = cfg
            .r1_allow_prefixes
            .iter()
            .any(|(p, _)| fa.rel.starts_with(p.as_str()));
        if !r1_allowed {
            check_no_panic(fa, &mut out);
        }
        if cfg.r2_scope.iter().any(|p| fa.rel.starts_with(p.as_str())) {
            check_delegates(fa, cfg.r2_max_body_tokens, &mut out);
        }
        if cfg.r3_hot_files.iter().any(|f| f == fa.rel) {
            check_caches(fa, &mut out);
        }
        if cfg.r4_wire_files.iter().any(|f| f == fa.rel) {
            check_narrowing(fa, &mut out);
        }
        if !cfg.r5_exempt_files.iter().any(|f| f == fa.rel) {
            check_float_eq(fa, &mut out);
        }
    }
    // R6 deliberately runs outside the non-library gate: `src/bin/`
    // entry points (aq-cli's retry loop) must route their waiting
    // through the backoff module too.
    if cfg.r6_scope.iter().any(|p| fa.rel.starts_with(p.as_str()))
        && !cfg.r6_exempt_files.iter().any(|f| f == fa.rel)
    {
        check_bare_sleep(fa, &mut out);
    }
    // R7 likewise covers `src/bin/` entry points: an aq-cli or aq-served
    // that seeds itself from the OS breaks shot reproducibility end to end.
    if cfg.r7_scope.iter().any(|p| fa.rel.starts_with(p.as_str())) {
        check_unseeded_random(fa, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out
}

/// A0: every `aq-lint:` directive needs a substantive justification.
fn check_suppressions(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for a in &fa.allows {
        if !a.has_reason || a.rules.is_empty() {
            let pos = fa
                .lines
                .line_text(fa.src, a.line)
                .find("aq-lint")
                .unwrap_or(0);
            let start = if a.line > 0 {
                // reconstruct a byte offset on that line for reporting
                fa.src
                    .split_inclusive('\n')
                    .take(a.line - 1)
                    .map(str::len)
                    .sum::<usize>()
                    + pos
            } else {
                0
            };
            let (line, col) = fa.lines.line_col(start);
            out.push(Finding {
                rule: RuleId::BadSuppression,
                severity: Severity::Deny,
                file: fa.rel.to_string(),
                line,
                col,
                message: "suppression directive must name known rules and carry a justification: \
                          `// aq-lint: allow(R1): <why this is sound>`"
                    .to_string(),
            });
        }
    }
}

const R1_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// R1: panic-family calls in non-test library code.
fn check_no_panic(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let Some(tok) = fa.code_tok(ci) else {
            continue;
        };
        if tok.kind != TokKind::Ident || fa.in_test_code(tok.start) {
            continue;
        }
        let text = tok.text(fa.src);
        let next = fa.code_text(ci + 1);
        if (text == "unwrap" || text == "expect") && next == "(" {
            let prev = if ci > 0 { fa.code_text(ci - 1) } else { "" };
            if prev != "." {
                continue; // a definition or a free fn, not a call on a Result/Option
            }
            fa.finding(
                RuleId::NoPanicPath,
                tok.start,
                format!(
                    "`.{text}()` in non-test library code; propagate a structured error \
                     (EngineError/SimError) or use the try_* API"
                ),
                out,
            );
        } else if R1_MACROS.contains(&text) && next == "!" {
            if text == "panic" && is_delegate_panic(fa, ci) {
                continue; // the sanctioned infallible-wrapper idiom (see R2)
            }
            fa.finding(
                RuleId::NoPanicPath,
                tok.start,
                format!("`{text}!` in non-test library code; return a structured error instead"),
                out,
            );
        }
    }
}

/// Whether the `panic` ident at code index `ci` sits inside the sanctioned
/// wrapper idiom `…unwrap_or_else(|e| panic!(…))`.
fn is_delegate_panic(fa: &FileAnalysis<'_>, ci: usize) -> bool {
    if ci < 5 {
        return false;
    }
    fa.code_text(ci - 1) == "|"
        && fa.code_tok(ci - 2).map(|t| t.kind) == Some(TokKind::Ident)
        && fa.code_text(ci - 3) == "|"
        && fa.code_text(ci - 4) == "("
        && fa.code_text(ci - 5) == "unwrap_or_else"
}

/// R2: for every `pub fn try_x` in the file, a sibling `pub fn x` must be
/// a thin delegate that actually calls `try_x`.
fn check_delegates(fa: &FileAnalysis<'_>, max_body_tokens: usize, out: &mut Vec<Finding>) {
    // collect (name, code-index-of-name) for every `pub … fn name`
    let mut pub_fns: Vec<(&str, usize)> = Vec::new();
    for ci in 0..fa.code.len() {
        if fa.code_text(ci) != "pub" {
            continue;
        }
        let mut j = ci + 1;
        if fa.code_text(j) == "(" {
            // pub(crate), pub(super), …
            while j < fa.code.len() && fa.code_text(j) != ")" {
                j += 1;
            }
            j += 1;
        }
        // allow qualifiers between pub and fn (const, unsafe, async)
        let mut guard = 0;
        while guard < 3 && matches!(fa.code_text(j), "const" | "unsafe" | "async") {
            j += 1;
            guard += 1;
        }
        if fa.code_text(j) != "fn" {
            continue;
        }
        let name_ci = j + 1;
        if let Some(t) = fa.code_tok(name_ci) {
            if t.kind == TokKind::Ident && !fa.in_test_code(t.start) {
                pub_fns.push((t.text(fa.src), name_ci));
            }
        }
    }
    for &(name, _) in pub_fns.iter().filter(|(n, _)| n.starts_with("try_")) {
        let sibling = &name[4..];
        for &(n, ci) in pub_fns.iter().filter(|(n, _)| *n == sibling) {
            let Some((body_start, body_end)) = fn_body_span(fa, ci) else {
                continue;
            };
            let body: Vec<&str> = (body_start..body_end).map(|j| fa.code_text(j)).collect();
            let pos = fa.code_tok(ci).map(|t| t.start).unwrap_or(0);
            if !body.contains(&name) {
                fa.finding(
                    RuleId::InfallibleDelegate,
                    pos,
                    format!(
                        "infallible `pub fn {n}` has a `{name}` sibling but never calls it; \
                         it must be a thin delegate so both paths share one implementation"
                    ),
                    out,
                );
            } else if body.len() > max_body_tokens {
                fa.finding(
                    RuleId::InfallibleDelegate,
                    pos,
                    format!(
                        "infallible `pub fn {n}` is {} tokens long (limit {max_body_tokens}); \
                         move the logic into `{name}` and delegate",
                        body.len()
                    ),
                    out,
                );
            }
        }
    }
}

/// Code-index span `(start, end)` of the brace body of the fn whose name
/// sits at code index `name_ci` (exclusive of the braces themselves).
fn fn_body_span(fa: &FileAnalysis<'_>, name_ci: usize) -> Option<(usize, usize)> {
    let mut j = name_ci;
    while j < fa.code.len() && fa.code_text(j) != "{" {
        if fa.code_text(j) == ";" {
            return None; // trait method without body
        }
        j += 1;
    }
    let open = j;
    let mut depth = 0usize;
    while let Some(t) = fa.code_tok(j) {
        match t.text(fa.src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, j));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

const MAP_TYPES: &[&str] = &["HashMap", "BTreeMap", "FxHashMap"];
const CACHE_HINTS: &[&str] = &["cache", "memo", "lut", "lookup"];

/// R3: a field or binding whose name smells like a cache must not be an
/// unbounded map in a hot-path module.
fn check_caches(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let Some(tok) = fa.code_tok(ci) else {
            continue;
        };
        if tok.kind != TokKind::Ident
            || !MAP_TYPES.contains(&tok.text(fa.src))
            || fa.in_test_code(tok.start)
        {
            continue;
        }
        // look back a few tokens for `cacheish_name :` or `cacheish_name =`
        let mut cacheish: Option<&str> = None;
        for back in 1..=8 {
            if back > ci {
                break;
            }
            let Some(t) = fa.code_tok(ci - back) else {
                break;
            };
            let text = t.text(fa.src);
            if t.kind == TokKind::Ident {
                let lower = text.to_ascii_lowercase();
                if CACHE_HINTS.iter().any(|h| lower.contains(h)) {
                    let sep = fa.code_text(ci - back + 1);
                    if sep == ":" || sep == "=" {
                        cacheish = Some(text);
                        break;
                    }
                }
            }
            if matches!(text, ";" | "{" | "}" | ",") {
                break; // statement / field boundary
            }
        }
        if let Some(name) = cacheish {
            fa.finding(
                RuleId::UnboundedCache,
                tok.start,
                format!(
                    "`{name}` is an unbounded {} used as a cache in a hot-path module; \
                     use a direct-mapped bounded cache (see crates/core/src/cache.rs)",
                    tok.text(fa.src)
                ),
                out,
            );
        }
    }
}

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// R4: bare `as` casts to narrower integer types in wire/snapshot code.
fn check_narrowing(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let Some(tok) = fa.code_tok(ci) else {
            continue;
        };
        if tok.kind != TokKind::Ident || tok.text(fa.src) != "as" || fa.in_test_code(tok.start) {
            continue;
        }
        let target = fa.code_text(ci + 1);
        if NARROW_TARGETS.contains(&target) {
            fa.finding(
                RuleId::NarrowingCast,
                tok.start,
                format!(
                    "bare `as {target}` narrowing cast in wire/snapshot code; corrupted or \
                     hostile input must fail structurally — use `{target}::try_from` or a \
                     checked helper"
                ),
                out,
            );
        }
    }
}

/// R6: bare `thread::sleep` in serve code. Ad-hoc sleeps hide latency
/// from the supervisor, stall shutdown, and are invisible to the
/// lock-order audit; all timed waiting goes through `backoff::sleep` (a
/// marked blocking op) or a deadline-bearing condvar wait.
fn check_bare_sleep(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let Some(tok) = fa.code_tok(ci) else {
            continue;
        };
        if tok.kind != TokKind::Ident || tok.text(fa.src) != "sleep" || fa.in_test_code(tok.start) {
            continue;
        }
        let prev = if ci > 0 { fa.code_text(ci - 1) } else { "" };
        let prev2 = if ci > 1 { fa.code_text(ci - 2) } else { "" };
        if prev == "::" && prev2 == "thread" {
            fa.finding(
                RuleId::BareSleep,
                tok.start,
                "bare `thread::sleep` in serve code; wait through `backoff::sleep` (a marked \
                 blocking op the lock audit and supervisor can account for) or a \
                 deadline-bearing condvar wait"
                    .to_string(),
                out,
            );
        }
    }
}

/// Entropy-drawing constructors: every way the `rand`/`getrandom`
/// ecosystem (or std's `RandomState` hasher trick) mints an OS-seeded
/// generator. None of them can replay a shot stream.
const UNSEEDED_RNG: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// R7: unseeded randomness in sim/serve code. The sampler's whole
/// contract is `(circuit, scheme, shots, seed) -> histogram`, bit-stable
/// across runs and hosts; the serve result cache and the chaos suites
/// both rely on it. A single `thread_rng()` (or an OS-entropy seed)
/// anywhere in those paths silently voids that contract, so every
/// generator must be constructed from an explicit seed (`seed_from_u64`,
/// a splitmix on the job seed, …).
fn check_unseeded_random(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let Some(tok) = fa.code_tok(ci) else {
            continue;
        };
        if tok.kind != TokKind::Ident || fa.in_test_code(tok.start) {
            continue;
        }
        let text = tok.text(fa.src);
        if UNSEEDED_RNG.contains(&text) {
            fa.finding(
                RuleId::UnseededRandom,
                tok.start,
                format!(
                    "`{text}` draws OS entropy in sim/serve code; sampling must be \
                     reproducible from the job's explicit seed — construct the generator \
                     with `seed_from_u64`/a seeded splitmix instead"
                ),
                out,
            );
        }
    }
}

/// R5: `==` / `!=` where one side is a float literal (or an f64 special
/// constant), outside the epsilon module.
fn check_float_eq(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let Some(tok) = fa.code_tok(ci) else {
            continue;
        };
        let text = tok.text(fa.src);
        if tok.kind != TokKind::Punct
            || (text != "==" && text != "!=")
            || fa.in_test_code(tok.start)
        {
            continue;
        }
        let float_neighbor = |j: usize| -> bool {
            let Some(t) = fa.code_tok(j) else {
                return false;
            };
            if t.kind == TokKind::Float {
                return true;
            }
            // f64::NAN / f64::INFINITY style constants
            t.kind == TokKind::Ident
                && matches!(t.text(fa.src), "NAN" | "INFINITY" | "NEG_INFINITY")
        };
        // operand after: literal, or `- literal`; operand before: literal
        // at ci-1 (possibly behind a closing paren we don't chase).
        let after =
            float_neighbor(ci + 1) || (fa.code_text(ci + 1) == "-" && float_neighbor(ci + 2));
        let before = ci > 0 && float_neighbor(ci - 1);
        if after || before {
            fa.finding(
                RuleId::FloatEq,
                tok.start,
                format!(
                    "direct `{text}` against a float literal; tolerance-dependent behaviour \
                     belongs in the epsilon module (aq_rings::Tolerance) — compare through it \
                     or justify with an allow directive"
                ),
                out,
            );
        }
    }
}
