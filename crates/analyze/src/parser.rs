//! A coarse-grained recursive-descent parser over the lexer's token
//! stream.
//!
//! This is deliberately *not* a full Rust grammar: the semantic passes
//! (panic-reachability, static lock order, wire-schema cross-checks) need
//! item boundaries, function identities and an event stream per body —
//! calls, method calls, macro invocations, index expressions, block
//! scoping, `let` bindings and `drop()` calls — and nothing else. The
//! parser therefore recognises items (`fn`, `impl`, `trait`, `mod`,
//! `struct`, `enum`, `use`, `static`/`const`), attributes it, and scans
//! each `fn` body into a flat [`Event`] list carrying brace depth and
//! statement boundaries. Everything it does not understand it skips
//! token-by-token, so pathological input degrades to fewer events, never
//! to a panic or a hang.
//!
//! Test attribution reuses [`FileAnalysis`]'s `#[cfg(test)]`/`#[test]`
//! span detection: any function whose name lies inside a test span is
//! marked `is_test` and excluded from the semantic passes.

use crate::lexer::TokKind;
use crate::rules::FileAnalysis;

/// How a method call's receiver looked at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// The receiver chain ends in a plain identifier (`self.queue.pop()`
    /// → `queue`), usable for field-type lookup.
    Simple(String),
    /// The receiver ends in `)`/`]`/a literal — a computed expression the
    /// resolver refuses to guess about.
    Complex,
}

/// One occurrence the semantic passes care about, in body order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A call through a path: `foo(…)`, `Type::method(…)`, `a::b::c(…)`.
    Call {
        /// Path segments, last one the callee name.
        path: Vec<String>,
        /// Byte offset of the callee name token.
        pos: usize,
        /// Inside a `catch_unwind(…)` argument.
        guarded: bool,
        /// Brace depth at the call site (0 = fn body top level).
        depth: u32,
        /// `let` binding the enclosing statement assigns to, if any.
        let_ident: Option<String>,
        /// The call's result is consumed by a further `.` chain — any
        /// guard it returns is a statement temporary, not a binding.
        chained: bool,
    },
    /// A method call `recv.name(…)`.
    Method {
        /// Receiver shape.
        recv: Recv,
        /// Method name.
        name: String,
        /// Byte offset of the method name token.
        pos: usize,
        /// Inside a `catch_unwind(…)` argument.
        guarded: bool,
        /// Brace depth at the call site.
        depth: u32,
        /// `let` binding the enclosing statement assigns to, if any.
        let_ident: Option<String>,
        /// The call's result is consumed by a further `.` chain — any
        /// guard it returns is a statement temporary, not a binding.
        chained: bool,
    },
    /// A macro invocation `name!(…)` / `name![…]` / `name!{…}`.
    MacroUse {
        /// Macro name.
        name: String,
        /// Byte offset of the name token.
        pos: usize,
        /// Inside a `catch_unwind(…)` argument.
        guarded: bool,
    },
    /// A postfix index expression `expr[…]` with a non-literal index.
    Index {
        /// Byte offset of the `[`.
        pos: usize,
        /// Inside a `catch_unwind(…)` argument.
        guarded: bool,
    },
    /// A `drop(ident)` call releasing a named binding.
    Drop {
        /// The dropped identifier.
        ident: String,
    },
    /// A `}` returning to `to_depth`.
    Close {
        /// Brace depth after the close.
        to_depth: u32,
    },
    /// A `;` at `depth` — releases statement-temporary guards.
    StmtEnd {
        /// Brace depth at the semicolon.
        depth: u32,
    },
}

/// One function (free or associated) with its scanned body.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name.
    pub name: String,
    /// Inherent-impl / trait type head for associated fns.
    pub owner: Option<String>,
    /// Lies inside a `#[cfg(test)]` / `#[test]` span.
    pub is_test: bool,
    /// Return type text mentions `Guard` — callers inherit its locks.
    pub returns_guard: bool,
    /// Byte offset of the name token (for reporting).
    pub pos: usize,
    /// Body events in source order (empty for bodiless signatures).
    pub body: Vec<Event>,
}

impl FnDef {
    /// `Owner::name` for associated fns, bare `name` otherwise.
    pub fn qname(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `use` leaf: `alias` names `target` from crate `crate_seg`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The name visible in this file.
    pub alias: String,
    /// First path segment (`aq_circuits`, `crate`, `std`, …).
    pub crate_seg: String,
    /// The leaf item actually named.
    pub target: String,
}

/// A struct field and the head identifier of its declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// First identifier of the type (`DebugMutex` for
    /// `DebugMutex<Registry>`).
    pub type_head: String,
}

/// A `static`/`const` item and its type head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDecl {
    /// Item name.
    pub name: String,
    /// First identifier of the type.
    pub type_head: String,
}

/// Everything parsed out of one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name (`serve` for `crates/serve/src/…`, `root`
    /// for top-level `src/`/`tests/`).
    pub crate_name: String,
    /// All functions, free and associated, test ones included (flagged).
    pub fns: Vec<FnDef>,
    /// `use` aliases visible in this file.
    pub uses: Vec<UseAlias>,
    /// Struct fields (for receiver-type inference).
    pub fields: Vec<FieldDecl>,
    /// Statics and consts (for receiver-type inference).
    pub statics: Vec<StaticDecl>,
}

/// Crate directory a workspace-relative path belongs to.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(dir) = parts.next() {
            return dir.to_string();
        }
    }
    "root".to_string()
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "ref", "unsafe",
    "break", "continue", "where", "dyn", "impl", "fn", "let", "mut", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "crate", "super", "self", "Self", "await", "async",
    "extern", "union", "box", "yield", "true", "false",
];

struct Parser<'a> {
    fa: &'a FileAnalysis<'a>,
    out: ParsedFile,
}

/// Parses one pre-analysed file into its item tree.
pub fn parse(fa: &FileAnalysis<'_>) -> ParsedFile {
    let mut p = Parser {
        fa,
        out: ParsedFile {
            rel: fa.rel.to_string(),
            crate_name: crate_of(fa.rel),
            ..ParsedFile::default()
        },
    };
    let n = fa.code.len();
    p.items(0, n, None);
    p.out
}

impl<'a> Parser<'a> {
    fn text(&self, ci: usize) -> &'a str {
        self.fa
            .code
            .get(ci)
            .map(|&i| self.fa.tokens[i].text(self.fa.src))
            .unwrap_or("")
    }

    fn kind(&self, ci: usize) -> Option<TokKind> {
        self.fa.code.get(ci).map(|&i| self.fa.tokens[i].kind)
    }

    fn start(&self, ci: usize) -> usize {
        self.fa
            .code
            .get(ci)
            .map(|&i| self.fa.tokens[i].start)
            .unwrap_or(self.fa.src.len())
    }

    fn end_byte(&self, ci: usize) -> usize {
        self.fa
            .code
            .get(ci)
            .map(|&i| self.fa.tokens[i].end)
            .unwrap_or(self.fa.src.len())
    }

    fn is_ident(&self, ci: usize) -> bool {
        matches!(self.kind(ci), Some(TokKind::Ident | TokKind::RawIdent))
    }

    /// Index just past the `]` matching the `[` at `ci + 1` (attribute
    /// form `#[…]`), or `ci + 2` on malformed input.
    fn skip_attr(&self, ci: usize) -> usize {
        let mut j = ci + 1;
        let mut depth = 0usize;
        let n = self.fa.code.len();
        while j < n {
            match self.text(j) {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        n
    }

    /// Index just past the delimiter-balanced group opening at `ci`
    /// (`(`/`[`/`{`). Saturates at end of input.
    fn skip_group(&self, ci: usize) -> usize {
        let (open, close) = match self.text(ci) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return ci + 1,
        };
        let mut depth = 0usize;
        let mut j = ci;
        let n = self.fa.code.len();
        while j < n {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        n
    }

    /// Index just past a generics group `<…>` starting at `ci`; counts
    /// `<`/`>` characters inside punctuation so `>>` closes two levels.
    /// `->` is ignored (function-trait bounds).
    fn skip_generics(&self, ci: usize) -> usize {
        let mut depth = 0isize;
        let mut j = ci;
        let n = self.fa.code.len();
        while j < n {
            let t = self.text(j);
            if self.kind(j) == Some(TokKind::Punct) && t != "->" && t != "=>" {
                for c in t.chars() {
                    match c {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
            } else if matches!(t, "(" | "[") {
                j = self.skip_group(j);
                if depth <= 0 {
                    return j;
                }
                continue;
            } else if matches!(t, "{" | ";") {
                return j; // runaway generics: bail before an item boundary
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        n
    }

    /// Item-level scan of the code-token range `[i, end)`.
    fn items(&mut self, mut i: usize, end: usize, owner: Option<&str>) {
        while i < end {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => i = self.skip_attr(i),
                "pub" => {
                    i += 1;
                    if self.text(i) == "(" {
                        i = self.skip_group(i);
                    }
                }
                "unsafe" | "async" | "default" => i += 1,
                "extern" => {
                    i += 1;
                    if matches!(self.kind(i), Some(TokKind::Str)) {
                        i += 1;
                    }
                }
                "use" => i = self.parse_use(i, end),
                "fn" => i = self.parse_fn(i, end, owner),
                "impl" => i = self.parse_impl(i, end),
                "trait" => i = self.parse_braced_scope(i, end, true),
                "mod" => i = self.parse_braced_scope(i, end, false),
                "struct" => i = self.parse_struct(i, end),
                "enum" | "union" => i = self.skip_item(i + 1, end),
                "static" | "const" if self.text(i + 1) != "fn" && self.text(i + 1) != "unsafe" => {
                    i = self.parse_static(i, end)
                }
                "const" => i += 1, // `const fn` qualifier
                "type" | "macro_rules" => i = self.skip_item(i + 1, end),
                "{" | "(" | "[" => i = self.skip_group(i),
                _ => i += 1,
            }
        }
    }

    /// Skips to just past the item starting after its keyword: the first
    /// top-level `;` or the matching `}` of its first brace block.
    fn skip_item(&self, mut i: usize, end: usize) -> usize {
        let mut nest = 0usize;
        while i < end {
            match self.text(i) {
                "(" | "[" => nest += 1,
                ")" | "]" => nest = nest.saturating_sub(1),
                ";" if nest == 0 => return i + 1,
                "{" if nest == 0 => return self.skip_group(i),
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// `use a::b::{c, d as e};` — records leaf aliases.
    fn parse_use(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        let mut prefix: Vec<String> = Vec::new();
        let mut last: Option<String> = None;
        // walk the simple path up to `{`, `;`, or `as`
        while j < end {
            let t = self.text(j);
            if self.is_ident(j) {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                last = Some(t.to_string());
                j += 1;
            } else if t == "::" {
                j += 1;
            } else {
                break;
            }
        }
        let crate_seg = prefix
            .first()
            .cloned()
            .or_else(|| last.clone())
            .unwrap_or_default();
        match self.text(j) {
            ";" => {
                if let Some(leaf) = last {
                    self.push_use(&leaf, &crate_seg, &leaf);
                }
                j + 1
            }
            "as" => {
                let alias = self.text(j + 1).to_string();
                if let Some(leaf) = last {
                    self.push_use(&alias, &crate_seg, &leaf);
                }
                self.skip_item(j, end)
            }
            "{" => {
                // one group level: entries are `leaf`, `leaf as alias`,
                // or deeper paths whose own leaf we take
                let close = self.skip_group(j);
                let mut k = j + 1;
                let mut leaf: Option<String> = None;
                while k < close.saturating_sub(1) {
                    let t = self.text(k);
                    if self.is_ident(k) && t != "as" {
                        leaf = Some(t.to_string());
                        k += 1;
                    } else if t == "as" {
                        let alias = self.text(k + 1).to_string();
                        if let Some(l) = leaf.take() {
                            self.push_use(&alias, &crate_seg, &l);
                        }
                        k += 2;
                    } else if t == "," || t == "}" {
                        if let Some(l) = leaf.take() {
                            self.push_use(&l, &crate_seg, &l);
                        }
                        k += 1;
                    } else {
                        k += 1;
                    }
                }
                if let Some(l) = leaf.take() {
                    self.push_use(&l, &crate_seg, &l);
                }
                self.skip_item(close, end)
            }
            _ => self.skip_item(j, end),
        }
    }

    fn push_use(&mut self, alias: &str, crate_seg: &str, target: &str) {
        if alias == "*" || alias.is_empty() {
            return;
        }
        self.out.uses.push(UseAlias {
            alias: alias.to_string(),
            crate_seg: crate_seg.to_string(),
            target: target.to_string(),
        });
    }

    /// `impl<T> Type { … }` / `impl Trait for Type { … }` — recurses into
    /// the body with the implemented type as owner.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.text(j) == "<" {
            j = self.skip_generics(j);
        }
        // the type head is the last path segment before generics/`{`/`for`;
        // on a trait impl, the head after `for` wins.
        let mut head = String::new();
        while j < end {
            let t = self.text(j);
            if self.is_ident(j) && t != "for" && t != "where" {
                head = t.to_string();
                j += 1;
            } else if t == "::" {
                j += 1;
            } else if t == "<" {
                j = self.skip_generics(j);
            } else if t == "for" {
                head.clear();
                j += 1;
            } else if t == "&" || t == "'" || matches!(self.kind(j), Some(TokKind::Lifetime)) {
                j += 1;
            } else {
                break;
            }
        }
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1; // where clause
        }
        if self.text(j) != "{" {
            return j + 1;
        }
        let close = self.skip_group(j);
        let owner = if head.is_empty() { None } else { Some(head) };
        self.items(j + 1, close.saturating_sub(1), owner.as_deref());
        close
    }

    /// `trait Name { … }` (owner = trait name, for default methods) or
    /// `mod name { … }` (no owner change).
    fn parse_braced_scope(&mut self, i: usize, end: usize, named_owner: bool) -> usize {
        let name = self.text(i + 1).to_string();
        let mut j = i + 2;
        if self.text(j) == "<" {
            j = self.skip_generics(j);
        }
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if self.text(j) != "{" {
            return j + 1; // `mod name;`
        }
        let close = self.skip_group(j);
        let owner = if named_owner { Some(name) } else { None };
        self.items(j + 1, close.saturating_sub(1), owner.as_deref());
        close
    }

    /// `struct Name { field: Type, … }` — records field type heads.
    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 2; // past `struct Name`
        if self.text(j) == "<" {
            j = self.skip_generics(j);
        }
        while j < end && !matches!(self.text(j), "{" | "(" | ";") {
            j += 1; // where clause
        }
        match self.text(j) {
            ";" => j + 1,
            "(" => self.skip_item(j, end), // tuple struct
            "{" => {
                let close = self.skip_group(j);
                let mut k = j + 1;
                while k + 1 < close {
                    if self.text(k) == "#" && self.text(k + 1) == "[" {
                        k = self.skip_attr(k);
                        continue;
                    }
                    if self.text(k) == "pub" {
                        k += 1;
                        if self.text(k) == "(" {
                            k = self.skip_group(k);
                        }
                        continue;
                    }
                    if self.is_ident(k) && self.text(k + 1) == ":" {
                        let name = self.text(k).to_string();
                        // type head: first ident after `:`, skipping
                        // references, lifetimes and qualifiers
                        let mut m = k + 2;
                        while m < close
                            && (matches!(self.text(m), "&" | "mut" | "dyn" | "impl")
                                || matches!(self.kind(m), Some(TokKind::Lifetime)))
                        {
                            m += 1;
                        }
                        if self.is_ident(m) {
                            self.out.fields.push(FieldDecl {
                                name,
                                type_head: self.text(m).to_string(),
                            });
                        }
                        // skip to the `,` ending this field, minding nesting
                        let mut angle = 0isize;
                        let mut nest = 0usize;
                        while m < close {
                            let t = self.text(m);
                            match t {
                                "(" | "[" => nest += 1,
                                ")" | "]" => nest = nest.saturating_sub(1),
                                "," if nest == 0 && angle <= 0 => break,
                                _ if self.kind(m) == Some(TokKind::Punct) && t != "->" => {
                                    for c in t.chars() {
                                        match c {
                                            '<' => angle += 1,
                                            '>' => angle -= 1,
                                            _ => {}
                                        }
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        k = m + 1;
                        continue;
                    }
                    k += 1;
                }
                close
            }
            _ => j + 1,
        }
    }

    /// `static NAME: Type = …;` / `const NAME: Type = …;`.
    fn parse_static(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.text(j) == "mut" {
            j += 1;
        }
        let name = self.text(j).to_string();
        if self.text(j + 1) == ":" {
            let mut m = j + 2;
            while m < end
                && (matches!(self.text(m), "&" | "mut" | "dyn" | "impl")
                    || matches!(self.kind(m), Some(TokKind::Lifetime)))
            {
                m += 1;
            }
            if self.is_ident(m) {
                self.out.statics.push(StaticDecl {
                    name,
                    type_head: self.text(m).to_string(),
                });
            }
        }
        self.skip_item(j, end)
    }

    /// `fn name<…>(…) -> Ret { body }` — signature plus body events.
    fn parse_fn(&mut self, i: usize, end: usize, owner: Option<&str>) -> usize {
        let name_ci = i + 1;
        if !self.is_ident(name_ci) {
            return i + 1;
        }
        let name = self.text(name_ci).to_string();
        let pos = self.start(name_ci);
        let mut j = name_ci + 1;
        if self.text(j) == "<" {
            j = self.skip_generics(j);
        }
        if self.text(j) == "(" {
            j = self.skip_group(j);
        }
        let mut returns_guard = false;
        if self.text(j) == "->" {
            j += 1;
            while j < end && !matches!(self.text(j), "{" | ";" | "where") {
                if self.text(j).contains("Guard") {
                    returns_guard = true;
                }
                if matches!(self.text(j), "(" | "[") {
                    j = self.skip_group(j);
                } else {
                    j += 1;
                }
            }
        }
        while j < end && !matches!(self.text(j), "{" | ";") {
            j += 1; // where clause
        }
        let (body, past) = if self.text(j) == "{" {
            let close = self.skip_group(j);
            let events = self.scan_body(j + 1, close.saturating_sub(1), owner);
            (events, close)
        } else {
            (Vec::new(), j + 1)
        };
        self.out.fns.push(FnDef {
            name,
            owner: owner.map(str::to_string),
            is_test: self.fa.in_test_code(pos),
            returns_guard,
            pos,
            body,
        });
        past
    }

    /// Flat event scan of a body's code-token range. Nested `fn` items are
    /// parsed as their own [`FnDef`]s and excluded from the outer stream.
    fn scan_body(&mut self, start: usize, end: usize, owner: Option<&str>) -> Vec<Event> {
        let mut events = Vec::new();
        let mut depth: u32 = 0;
        let mut pending_let: Option<(String, u32)> = None;
        let mut guards: Vec<(usize, usize)> = Vec::new();
        let mut j = start;
        while j < end {
            let t = self.text(j);
            let in_guard = {
                let p = self.start(j);
                guards.iter().any(|&(s, e)| p >= s && p < e)
            };
            match t {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    events.push(Event::Close { to_depth: depth });
                }
                ";" => {
                    events.push(Event::StmtEnd { depth });
                    if pending_let.as_ref().is_some_and(|&(_, d)| d == depth) {
                        pending_let = None;
                    }
                }
                "#" if self.text(j + 1) == "[" => {
                    j = self.skip_attr(j);
                    continue;
                }
                "let" => {
                    let mut k = j + 1;
                    if self.text(k) == "mut" {
                        k += 1;
                    }
                    if self.is_ident(k) && matches!(self.text(k + 1), "=" | ":") {
                        pending_let = Some((self.text(k).to_string(), depth));
                    }
                }
                "fn" if self.is_ident(j + 1) => {
                    j = self.parse_fn(j, end, owner);
                    continue;
                }
                "[" => {
                    // postfix index: `expr[…]` — the `[` directly follows
                    // an ident or a closing delimiter
                    let prev_ident = j > 0 && self.is_ident(j - 1);
                    let prev_close = j > 0 && matches!(self.text(j - 1), ")" | "]");
                    let prev_kw = j > 0 && KEYWORDS_NOT_CALLS.contains(&self.text(j - 1));
                    if (prev_ident || prev_close) && !prev_kw && self.text(j.wrapping_sub(2)) != "!"
                    {
                        let close = self.skip_group(j);
                        let inner = close.saturating_sub(1).saturating_sub(j + 1);
                        let literal_only =
                            inner == 1 && matches!(self.kind(j + 1), Some(TokKind::Int));
                        if !literal_only {
                            events.push(Event::Index {
                                pos: self.start(j),
                                guarded: in_guard,
                            });
                        }
                        // do NOT skip the group: index expressions nest
                        // calls (`slots[pick(x)]`) we still want to see
                    }
                }
                _ if self.is_ident(j) => {
                    let prev = if j > 0 { self.text(j - 1) } else { "" };
                    let next = self.text(j + 1);
                    if KEYWORDS_NOT_CALLS.contains(&t) && t != "self" && t != "Self" {
                        j += 1;
                        continue;
                    }
                    if prev == "." && next == "(" {
                        let recv = if j >= 2 && self.is_ident(j - 2) {
                            Recv::Simple(self.text(j - 2).to_string())
                        } else {
                            Recv::Complex
                        };
                        events.push(Event::Method {
                            recv,
                            name: t.to_string(),
                            pos: self.start(j),
                            guarded: in_guard,
                            depth,
                            let_ident: pending_let
                                .as_ref()
                                .filter(|&&(_, d)| d == depth)
                                .map(|(n, _)| n.clone()),
                            chained: self.text(self.skip_group(j + 1)) == ".",
                        });
                    } else if next == "!" && matches!(self.text(j + 2), "(" | "[" | "{") {
                        events.push(Event::MacroUse {
                            name: t.to_string(),
                            pos: self.start(j),
                            guarded: in_guard,
                        });
                        // skip the macro bang so `!(` isn't re-scanned,
                        // but keep scanning the macro body (panic!,
                        // format! args contain calls we care about)
                        j += 2;
                        continue;
                    } else if next == "(" && prev != "fn" && !KEYWORDS_NOT_CALLS.contains(&t) {
                        // path call: walk `::`-joined segments backward
                        let mut segs = vec![t.to_string()];
                        let mut k = j;
                        while k >= 2 && self.text(k - 1) == "::" && self.is_ident(k - 2) {
                            segs.insert(0, self.text(k - 2).to_string());
                            k -= 2;
                        }
                        // `Struct { .. }`-style and tuple-variant heads are
                        // capitalised too, but calls and constructors are
                        // indistinguishable here; resolution sorts it out.
                        if segs.last().map(String::as_str) == Some("catch_unwind") {
                            let close = self.skip_group(j + 1);
                            guards
                                .push((self.end_byte(j + 1), self.start(close.saturating_sub(1))));
                        }
                        if segs.last().map(String::as_str) == Some("drop")
                            && self.is_ident(j + 2)
                            && self.text(j + 3) == ")"
                        {
                            events.push(Event::Drop {
                                ident: self.text(j + 2).to_string(),
                            });
                        }
                        events.push(Event::Call {
                            path: segs,
                            pos: self.start(j),
                            guarded: in_guard,
                            depth,
                            let_ident: pending_let
                                .as_ref()
                                .filter(|&&(_, d)| d == depth)
                                .map(|(n, _)| n.clone()),
                            chained: self.text(self.skip_group(j + 1)) == ".",
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
        events
    }
}
