//! # aq-analyze — the workspace lint engine
//!
//! The reproduced paper's thesis is that correctness must not depend on
//! tolerance-dependent luck; this crate applies the same stance to the
//! codebase itself. Instead of trusting convention — "infallible wrappers
//! delegate to `try_*`", "library crates never panic", "hot paths use
//! direct-mapped caches" — `aq-lint` walks every workspace source file
//! with a hand-rolled Rust lexer and enforces those invariants as rules
//! with structured findings (`file:line:col`, rule ID, severity).
//!
//! Std-only, like the rest of the workspace: the lexer ([`lexer`])
//! understands nested block comments, raw strings, byte strings,
//! lifetimes vs. char literals and raw identifiers, so rules operate on
//! real tokens, never on grep-able text. Scoping (which rule applies to
//! which path) lives in [`rules::LintConfig`]; legacy violations are
//! tracked in a committed `lint-baseline.toml` ([`baseline`]) so new
//! violations fail CI while old ones are paid down deliberately.
//!
//! v2 adds a semantic layer on top of the token rules: a coarse
//! recursive-descent [`parser`] produces per-file item trees, [`resolve`]
//! builds a best-effort workspace symbol index, [`callgraph`] turns the
//! two into a call graph, and [`semantic`] runs three whole-workspace
//! passes over it — R8 panic-reachability from serve entry roots, R9
//! static lock-order extraction (with a DOT graph diffable against the
//! runtime `lockaudit` graph), and R10 wire-schema exhaustiveness.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p aq-analyze --bin aq-lint -- --deny --baseline=lint-baseline.toml
//! ```
//!
//! Exit codes: `0` clean (or advisory mode), `1` findings at deny level
//! under `--deny`, `2` internal error (unreadable file, malformed
//! baseline) — CI distinguishes a lint failure from a broken linter.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod semantic;

pub use baseline::{Baseline, SuppressEntry};
pub use callgraph::{snapshot, snapshot_sources, CallGraph};
pub use engine::{
    discover_sources, lint_source, run_sources, run_workspace, InternalError, Report, RunStats,
};
pub use lexer::{lex, LineIndex, TokKind, Token};
pub use parser::{parse, ParsedFile};
pub use resolve::{FnId, Workspace};
pub use rules::{check_file, FileAnalysis, Finding, LintConfig, RuleId, Severity, REGISTRY};
pub use semantic::{LockDiff, LockEdge, LockGraph, SemanticReport};
