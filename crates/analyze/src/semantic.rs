//! The whole-workspace semantic passes built on the parser, resolver and
//! call graph: R8 panic-reachability, R9 static lock-order extraction,
//! R10 wire-schema exhaustiveness.
//!
//! All three are *best effort by construction* — resolution refuses
//! ambiguous names, so the analyses can miss edges — but every edge they
//! do report corresponds to a real syntactic site, and the serve test
//! suite cross-checks R9's static graph against the runtime `lockaudit`
//! graph to bound the gap from the other side.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::parser::{parse, Event, ParsedFile, Recv};
use crate::resolve::{FnId, Workspace};
use crate::rules::{FileAnalysis, Finding, LintConfig, RuleId, Severity};

/// One static held→acquired edge with its earliest witness site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held at the site.
    pub from: String,
    /// Lock acquired at the site.
    pub to: String,
    /// Workspace-relative file of the witness site.
    pub file: String,
    /// 1-based line of the witness site.
    pub line: usize,
    /// 1-based column of the witness site.
    pub col: usize,
}

/// The static lock-order graph R9 extracts.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every named `DebugMutex`/`DebugRwLock` discovered, sorted.
    pub nodes: Vec<String>,
    /// Held→acquired edges, sorted by `(from, to)`.
    pub edges: Vec<LockEdge>,
}

/// The static-vs-runtime diff the serve suite asserts on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockDiff {
    /// Runtime edges the static graph misses — analyzer gaps; the serve
    /// superset test fails on any of these.
    pub missing_static: Vec<(String, String)>,
    /// Static edges no runtime run has exercised — test-coverage gaps,
    /// reported as warnings.
    pub unexercised: Vec<(String, String)>,
}

impl LockGraph {
    /// Graphviz rendering, same shape as `lockaudit::dot_graph()`.
    pub fn dot(&self) -> String {
        let mut out = String::from("digraph lock_order {\n");
        for n in &self.nodes {
            out.push_str(&format!("  \"{n}\";\n"));
        }
        for e in &self.edges {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", e.from, e.to));
        }
        out.push_str("}\n");
        out
    }

    /// Diffs against a runtime held→acquired edge list.
    pub fn diff(&self, runtime: &[(String, String)]) -> LockDiff {
        let stat: BTreeSet<(&str, &str)> = self
            .edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        let run: BTreeSet<(&str, &str)> = runtime
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        LockDiff {
            missing_static: run
                .difference(&stat)
                .map(|&(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            unexercised: stat
                .difference(&run)
                .map(|&(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    /// The first acquisition cycle in the graph, as a node path
    /// `a → b → … → a`, or `None` when the graph is a DAG.
    pub fn cycle(&self) -> Option<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(&e.from).or_default().push(&e.to);
        }
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut color: BTreeMap<&str, u8> = BTreeMap::new();
        fn dfs<'a>(
            n: &'a str,
            adj: &BTreeMap<&'a str, Vec<&'a str>>,
            color: &mut BTreeMap<&'a str, u8>,
            stack: &mut Vec<&'a str>,
        ) -> Option<Vec<String>> {
            color.insert(n, 1);
            stack.push(n);
            for &m in adj.get(n).into_iter().flatten() {
                match color.get(m).copied().unwrap_or(0) {
                    1 => {
                        let start = stack.iter().position(|&s| s == m).unwrap_or(0);
                        let mut cyc: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        cyc.push(m.to_string());
                        return Some(cyc);
                    }
                    0 => {
                        if let Some(c) = dfs(m, adj, color, stack) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
            stack.pop();
            color.insert(n, 2);
            None
        }
        let nodes: Vec<&str> = adj.keys().copied().collect();
        for n in nodes {
            if color.get(n).copied().unwrap_or(0) == 0 {
                let mut stack = Vec::new();
                if let Some(c) = dfs(n, &adj, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// The outcome of the semantic passes over one workspace.
#[derive(Debug, Default)]
pub struct SemanticReport {
    /// R8/R9/R10 findings (allow directives already applied).
    pub findings: Vec<Finding>,
    /// Functions parsed across the workspace.
    pub items: usize,
    /// Resolved call-graph edges.
    pub call_edges: usize,
    /// The static lock-order graph (for DOT emission and the serve diff
    /// test).
    pub lock_graph: LockGraph,
}

/// Runs all three semantic passes. `analyses` must hold one entry per
/// workspace file, in any order.
pub fn analyze(analyses: &[FileAnalysis<'_>], cfg: &LintConfig) -> SemanticReport {
    let parsed: Vec<ParsedFile> = analyses.iter().map(parse).collect();
    let ws = Workspace::build(&parsed);
    let graph = CallGraph::build(&ws);
    let mut report = SemanticReport {
        items: parsed.iter().map(|p| p.fns.len()).sum(),
        call_edges: graph.edges.len(),
        ..SemanticReport::default()
    };
    panic_reach(analyses, &ws, &graph, cfg, &mut report.findings);
    report.lock_graph = lock_order(analyses, &ws, &graph, cfg, &mut report.findings);
    wire_schema(analyses, cfg, &mut report.findings);
    report
}

fn push_finding(
    analyses: &[FileAnalysis<'_>],
    rel: &str,
    rule: RuleId,
    pos: usize,
    also_covered_by: Option<RuleId>,
    message: String,
    out: &mut Vec<Finding>,
) {
    let Some(fa) = analyses.iter().find(|a| a.rel == rel) else {
        return;
    };
    let (line, col) = fa.lines.line_col(pos);
    if fa.allowed(rule, line) {
        return;
    }
    if let Some(r) = also_covered_by {
        if fa.allowed(r, line) {
            return; // one justified allow covers both views of the site
        }
    }
    out.push(Finding {
        rule,
        severity: Severity::Deny,
        file: rel.to_string(),
        line,
        col,
        message,
    });
}

// ---------------------------------------------------------------- R8 --

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// R8: from the configured entry roots, walk unguarded call edges and
/// report every reachable panic source (panic-family macro, `panic_any`,
/// `.unwrap()`/`.expect()`, and — in configured files — non-literal index
/// expressions) with its full call chain.
fn panic_reach(
    analyses: &[FileAnalysis<'_>],
    ws: &Workspace<'_>,
    graph: &CallGraph,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if cfg.r8_roots.is_empty() {
        return;
    }
    let mut roots: Vec<FnId> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let q = f.qname();
            if cfg.r8_roots.iter().any(|r| *r == q || *r == f.name) {
                roots.push((fi, gi));
            }
        }
    }
    let parent = graph.reach_unguarded(&roots);
    let mut reached: Vec<FnId> = parent.keys().copied().collect();
    reached.sort();
    for id in reached {
        let f = ws.fn_def(id);
        let rel = ws.rel_of(id);
        let index_scoped = cfg
            .r8_index_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()));
        for ev in &f.body {
            let (what, pos) = match ev {
                Event::MacroUse {
                    name,
                    pos,
                    guarded: false,
                } if PANIC_MACROS.contains(&name.as_str()) => (format!("`{name}!`"), *pos),
                Event::Call {
                    path,
                    pos,
                    guarded: false,
                    ..
                } if path.last().map(String::as_str) == Some("panic_any") => {
                    ("`panic_any`".to_string(), *pos)
                }
                Event::Method {
                    name,
                    pos,
                    guarded: false,
                    ..
                } if name == "unwrap" || name == "expect" => (format!("`.{name}()`"), *pos),
                Event::Index {
                    pos,
                    guarded: false,
                } if index_scoped => ("index expression".to_string(), *pos),
                _ => continue,
            };
            let chain = graph.chain(ws, &parent, id);
            let root = chain.first().cloned().unwrap_or_else(|| f.qname());
            push_finding(
                analyses,
                rel,
                RuleId::PanicReach,
                pos,
                Some(RuleId::NoPanicPath),
                format!(
                    "{what} reachable from entry root `{root}` outside catch_unwind \
                     (chain: {}); make the path fail-soft or justify with an allow directive",
                    chain.join(" → ")
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------- R9 --

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

/// Scans one file's tokens for `DebugMutex::new("name", …)` /
/// `DebugRwLock::new("name", …)` bindings: `field: DebugMutex::new(…)`,
/// `let x = …`, `static X: … = …`. Test-code definitions are skipped so
/// fixture locks never pollute the workspace graph.
fn lock_defs(fa: &FileAnalysis<'_>, defs: &mut HashMap<String, Vec<(String, LockKind)>>) {
    let text = |ci: usize| -> &str {
        fa.code
            .get(ci)
            .map(|&i| fa.tokens[i].text(fa.src))
            .unwrap_or("")
    };
    let kind_of = |ci: usize| fa.code.get(ci).map(|&i| fa.tokens[i].kind);
    for ci in 0..fa.code.len() {
        let kind = match text(ci) {
            "DebugMutex" => LockKind::Mutex,
            "DebugRwLock" => LockKind::RwLock,
            _ => continue,
        };
        if fa
            .code
            .get(ci)
            .is_some_and(|&i| fa.in_test_code(fa.tokens[i].start))
        {
            continue;
        }
        if text(ci + 1) != "::" || text(ci + 2) != "new" || text(ci + 3) != "(" {
            continue;
        }
        if kind_of(ci + 4) != Some(TokKind::Str) {
            continue;
        }
        let name = text(ci + 4).trim_matches('"').to_string();
        // binding ident: `ident: DebugMutex::new(…)` (struct literal or
        // field default), `let ident = …`, or `static IDENT: … = …`
        let ident = if ci >= 2 && text(ci - 1) == ":" && kind_of(ci - 2) == Some(TokKind::Ident) {
            Some(text(ci - 2).to_string())
        } else if ci >= 1 && text(ci - 1) == "=" {
            let mut k = ci - 1;
            let mut found = None;
            for _ in 0..16 {
                if k == 0 {
                    break;
                }
                k -= 1;
                if matches!(text(k), "let" | "static" | "const") {
                    let mut m = k + 1;
                    if text(m) == "mut" {
                        m += 1;
                    }
                    if kind_of(m) == Some(TokKind::Ident) {
                        found = Some(text(m).to_string());
                    }
                    break;
                }
                if matches!(text(k), ";" | "{" | "}") {
                    break;
                }
            }
            found
        } else {
            None
        };
        if let Some(id) = ident {
            let entry = defs.entry(id).or_default();
            if !entry.contains(&(name.clone(), kind)) {
                entry.push((name, kind));
            }
        }
    }
}

/// R9: propagate held-lock sets through the call graph, build the static
/// held→acquired graph, and report acquisition cycles. Returns the graph
/// for DOT emission and the runtime diff.
fn lock_order(
    analyses: &[FileAnalysis<'_>],
    ws: &Workspace<'_>,
    graph: &CallGraph,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) -> LockGraph {
    let mut defs: HashMap<String, Vec<(String, LockKind)>> = HashMap::new();
    for fa in analyses {
        lock_defs(fa, &mut defs);
    }
    if defs.is_empty() {
        return LockGraph::default();
    }
    let mut names: BTreeSet<String> = BTreeSet::new();
    for binds in defs.values() {
        for (n, _) in binds {
            names.insert(n.clone());
        }
    }
    let exempt = |rel: &str| cfg.r9_exempt_files.iter().any(|f| f == rel);

    // What lock names a method call on `recv.name()` acquires directly.
    let acquires_at = |file: &ParsedFile, ev: &Event| -> Vec<String> {
        let Event::Method { recv, name, .. } = ev else {
            return Vec::new();
        };
        let Recv::Simple(id) = recv else {
            return Vec::new();
        };
        if exempt(&file.rel) {
            return Vec::new();
        }
        let Some(binds) = defs.get(id) else {
            return Vec::new();
        };
        binds
            .iter()
            .filter(|(_, k)| match k {
                LockKind::Mutex => name == "lock",
                LockKind::RwLock => name == "read" || name == "write",
            })
            .map(|(n, _)| n.clone())
            .collect()
    };

    // Per-function may-acquire sets, to a fixpoint over all call edges
    // (guarded edges included: a catch_unwind'd callee still locks).
    let mut may: HashMap<FnId, BTreeSet<String>> = HashMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut set = BTreeSet::new();
            for ev in &f.body {
                for n in acquires_at(file, ev) {
                    set.insert(n);
                }
            }
            may.insert((fi, gi), set);
        }
    }
    loop {
        let mut changed = false;
        for e in &graph.edges {
            let callee_set = may.get(&e.callee).cloned().unwrap_or_default();
            if callee_set.is_empty() {
                continue;
            }
            let caller_set = may.entry(e.caller).or_default();
            for n in callee_set {
                changed |= caller_set.insert(n);
            }
        }
        if !changed {
            break;
        }
    }

    // Flow-sensitive intra-function walk: held set → edges.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let mut held: Vec<Held> = Vec::new();
            for ev in &f.body {
                match ev {
                    Event::Close { to_depth } => held.retain(|h| h.depth <= *to_depth),
                    Event::StmtEnd { depth } => held.retain(|h| !(h.temp && h.depth == *depth)),
                    Event::Drop { ident } => held.retain(|h| h.ident.as_deref() != Some(ident)),
                    Event::Method {
                        pos,
                        depth,
                        let_ident,
                        recv,
                        name,
                        chained,
                        ..
                    } => {
                        let direct = acquires_at(file, ev);
                        if !direct.is_empty() {
                            for n in &direct {
                                for h in &held {
                                    edges
                                        .entry((h.name.clone(), n.clone()))
                                        .or_insert_with(|| (file.rel.clone(), *pos));
                                }
                            }
                            // A chained acquisition (`x.lock().get(k)`)
                            // never binds its guard — even under `let`,
                            // the guard is a temporary dropped at the
                            // statement's end, not the binding.
                            for n in direct {
                                held.push(Held {
                                    name: n,
                                    depth: *depth,
                                    ident: let_ident.clone().filter(|_| !chained),
                                    temp: *chained || let_ident.is_none(),
                                });
                            }
                            continue;
                        }
                        let callees = ws.resolve_method(f.owner.as_deref(), recv, name);
                        call_locks(
                            ws, &may, &callees, &mut held, &mut edges, file, *pos, *depth,
                            let_ident, *chained,
                        );
                    }
                    Event::Call {
                        path,
                        pos,
                        depth,
                        let_ident,
                        chained,
                        ..
                    } => {
                        let callees = ws.resolve_call(fi, f.owner.as_deref(), path);
                        call_locks(
                            ws, &may, &callees, &mut held, &mut edges, file, *pos, *depth,
                            let_ident, *chained,
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    let graph_out = LockGraph {
        nodes: names.into_iter().collect(),
        edges: edges
            .into_iter()
            .map(|((from, to), (rel, pos))| {
                let (line, col) = analyses
                    .iter()
                    .find(|a| a.rel == rel)
                    .map(|a| a.lines.line_col(pos))
                    .unwrap_or((0, 0));
                LockEdge {
                    from,
                    to,
                    file: rel,
                    line,
                    col,
                }
            })
            .collect(),
    };
    if let Some(cycle) = graph_out.cycle() {
        // report at the witness site of the edge closing the cycle
        let (a, b) = (
            cycle[cycle.len() - 2].clone(),
            cycle[cycle.len() - 1].clone(),
        );
        let site = graph_out
            .edges
            .iter()
            .find(|e| e.from == a && e.to == b)
            .cloned();
        if let Some(e) = site {
            push_finding(
                analyses,
                &e.file,
                RuleId::StaticLockOrder,
                byte_of(analyses, &e.file, e.line, e.col),
                None,
                format!(
                    "static lock-order cycle: {}; acquisition order must form a DAG \
                     (witness edge `{a}` → `{b}` here)",
                    cycle.join(" → ")
                ),
                out,
            );
        }
    }
    graph_out
}

/// Byte offset of `line:col` in `rel` (for re-reporting a stored site).
fn byte_of(analyses: &[FileAnalysis<'_>], rel: &str, line: usize, col: usize) -> usize {
    analyses
        .iter()
        .find(|a| a.rel == rel)
        .map(|a| {
            let upto: usize = a
                .src
                .split_inclusive('\n')
                .take(line.saturating_sub(1))
                .map(str::len)
                .sum();
            upto + col.saturating_sub(1)
        })
        .unwrap_or(0)
}

/// One lock currently held during the flow-sensitive walk.
#[derive(Debug)]
struct Held {
    name: String,
    depth: u32,
    ident: Option<String>,
    temp: bool,
}

/// Held × transitive-acquire edges for one resolved call; guard-returning
/// callees hand their locks to the caller's held set.
#[allow(clippy::too_many_arguments)]
fn call_locks(
    ws: &Workspace<'_>,
    may: &HashMap<FnId, BTreeSet<String>>,
    callees: &[FnId],
    held: &mut Vec<Held>,
    edges: &mut BTreeMap<(String, String), (String, usize)>,
    file: &ParsedFile,
    pos: usize,
    depth: u32,
    let_ident: &Option<String>,
    chained: bool,
) {
    for &callee in callees {
        let Some(acq) = may.get(&callee) else {
            continue;
        };
        if acq.is_empty() {
            continue;
        }
        for n in acq {
            for h in held.iter() {
                edges
                    .entry((h.name.clone(), n.clone()))
                    .or_insert_with(|| (file.rel.clone(), pos));
            }
        }
        if ws.fn_def(callee).returns_guard {
            for n in acq {
                held.push(Held {
                    name: n.clone(),
                    depth,
                    ident: let_ident.clone().filter(|_| !chained),
                    temp: chained || let_ident.is_none(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- R10 --

#[derive(Debug, Default)]
struct WireSide {
    /// key → (file, pos) of first occurrence.
    keys: BTreeMap<String, (String, usize)>,
}

impl WireSide {
    fn add(&mut self, key: &str, rel: &str, pos: usize) {
        let norm = key.replace('-', "_");
        self.keys
            .entry(norm)
            .or_insert_with(|| (rel.to_string(), pos));
    }
}

/// Whether a string literal looks like a wire key (`shots`, `top_k`,
/// `serve.registry`) rather than a message or format string. Filters out
/// `format!("…: {}", x)`-style first arguments that share the `("…", `
/// token shape with key/value tuples.
fn is_wire_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

/// R10: cross-check the serialize and parse sides of the wire protocol.
/// Keys written by the configured writer files must be consumed somewhere
/// in the workspace (tests count — a response field nobody ever reads is
/// dead weight or a half-wired verb); keys parsed by the protocol parser
/// must be produced by some writer; verb literals must match the parse
/// arms both ways.
fn wire_schema(analyses: &[FileAnalysis<'_>], cfg: &LintConfig, out: &mut Vec<Finding>) {
    if cfg.r10_writer_files.is_empty() && cfg.r10_parser_files.is_empty() {
        return;
    }
    let is_writer = |rel: &str| cfg.r10_writer_files.iter().any(|f| f == rel);
    let is_parser = |rel: &str| cfg.r10_parser_files.iter().any(|f| f == rel);

    let mut writes = WireSide::default();
    let mut verb_writes = WireSide::default();
    let mut writer_literals: BTreeSet<String> = BTreeSet::new();
    let mut reads = WireSide::default();
    let mut parser_reads = WireSide::default();
    let mut verb_arms = WireSide::default();

    for fa in analyses {
        let text = |ci: usize| -> &str {
            fa.code
                .get(ci)
                .map(|&i| fa.tokens[i].text(fa.src))
                .unwrap_or("")
        };
        let kind = |ci: usize| fa.code.get(ci).map(|&i| fa.tokens[i].kind);
        let start = |ci: usize| -> usize {
            fa.code
                .get(ci)
                .map(|&i| fa.tokens[i].start)
                .unwrap_or(fa.src.len())
        };
        let lit = |ci: usize| -> Option<&str> {
            (kind(ci) == Some(TokKind::Str))
                .then(|| text(ci).trim_matches('"'))
                .filter(|s| is_wire_key(s))
        };

        let writer = is_writer(fa.rel);
        let parser = is_parser(fa.rel);

        for ci in 0..fa.code.len() {
            let pos = start(ci);
            // ---- reads: anywhere, test code included ----
            if text(ci) == "get"
                && ci > 0
                && text(ci - 1) == "."
                && text(ci + 1) == "("
                && text(ci + 3) == ")"
            {
                if let Some(k) = lit(ci + 2) {
                    reads.add(k, fa.rel, pos);
                    if parser && !fa.in_test_code(pos) {
                        parser_reads.add(k, fa.rel, pos);
                    }
                }
            }
            if kind(ci) == Some(TokKind::Ident)
                && (text(ci).starts_with("require_")
                    || text(ci).starts_with("opt_")
                    || text(ci).starts_with("checked_"))
                && text(ci + 1) == "("
            {
                // first string literal at argument depth 1 is the key
                let mut j = ci + 1;
                let mut depth = 0usize;
                while j < fa.code.len() {
                    match text(j) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if depth == 1 {
                                if let Some(k) = lit(j) {
                                    reads.add(k, fa.rel, start(j));
                                    if parser && !fa.in_test_code(start(j)) {
                                        parser_reads.add(k, fa.rel, start(j));
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    j += 1;
                }
            }
            if !writer || fa.in_test_code(pos) {
                continue;
            }
            // ---- writes: writer files, non-test code only ----
            if let Some(k) = lit(ci) {
                writer_literals.insert(k.to_string());
            }
            // A key/value tuple's `(` is never directly preceded by an
            // identifier or `!` — that shape is a call (or macro) taking
            // a string first argument (`DebugMutex::new("name", …)`,
            // `write!(f, …)`), not a wire write.
            let call_like = ci > 0
                && (matches!(kind(ci - 1), Some(TokKind::Ident | TokKind::RawIdent))
                    || text(ci - 1) == "!");
            if text(ci) == "(" && !call_like {
                if let Some(k) = lit(ci + 1) {
                    let tuple_key = text(ci + 2) == ","
                        || (text(ci + 2) == "."
                            && kind(ci + 3) == Some(TokKind::Ident)
                            && text(ci + 4) == "("
                            && text(ci + 5) == ")"
                            && text(ci + 6) == ",");
                    if tuple_key {
                        writes.add(k, fa.rel, start(ci + 1));
                        if k == "verb" {
                            // `("verb", Json::str("x"))` → a written verb
                            for j in ci + 2..(ci + 10).min(fa.code.len()) {
                                if text(j) == "str" && text(j + 1) == "(" {
                                    if let Some(v) = lit(j + 2) {
                                        verb_writes.add(v, fa.rel, start(j + 2));
                                    }
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            // string arrays (`for key in ["n", "marked", …]`) are writer
            // key lists in the CLI request builders
            if text(ci) == "[" && lit(ci + 1).is_some() {
                let mut j = ci + 1;
                let mut keys = Vec::new();
                let mut well_formed = true;
                while j < fa.code.len() {
                    match (lit(j), text(j + 1)) {
                        (Some(k), ",") => {
                            keys.push((k.to_string(), start(j)));
                            j += 2;
                            if text(j) == "]" {
                                break; // trailing comma
                            }
                        }
                        (Some(k), "]") => {
                            keys.push((k.to_string(), start(j)));
                            break;
                        }
                        _ => {
                            well_formed = false;
                            break;
                        }
                    }
                }
                if well_formed {
                    for (k, p) in keys {
                        writes.add(&k, fa.rel, p);
                    }
                }
            }
        }

        // ---- verb arms: the `match` following `get("verb")` ----
        if parser {
            let mut verb_at = None;
            for ci in 0..fa.code.len() {
                if text(ci) == "get" && text(ci + 1) == "(" && lit(ci + 2) == Some("verb") {
                    verb_at = Some(ci);
                    break;
                }
            }
            if let Some(at) = verb_at {
                let mut j = at;
                while j < fa.code.len() && text(j) != "match" {
                    j += 1;
                }
                while j < fa.code.len() && text(j) != "{" {
                    j += 1;
                }
                let mut depth = 0usize;
                while j < fa.code.len() {
                    match text(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if depth == 1 && matches!(text(j + 1), "=>" | "|") {
                                if let Some(v) = lit(j) {
                                    verb_arms.add(v, fa.rel, start(j));
                                }
                            }
                        }
                    }
                    j += 1;
                }
            }
        }
    }

    for (k, (rel, pos)) in &writes.keys {
        if !reads.keys.contains_key(k) {
            push_finding(
                analyses,
                rel,
                RuleId::WireSchema,
                *pos,
                None,
                format!(
                    "wire field `{k}` is written but never consumed by any parser or reader \
                     in the workspace — dead field or half-wired verb"
                ),
                out,
            );
        }
    }
    for (k, (rel, pos)) in &parser_reads.keys {
        if !writes.keys.contains_key(k) {
            push_finding(
                analyses,
                rel,
                RuleId::WireSchema,
                *pos,
                None,
                format!(
                    "wire field `{k}` is parsed but never written by any request builder — \
                     parse-only field (typo, or a writer was never updated)"
                ),
                out,
            );
        }
    }
    for (v, (rel, pos)) in &verb_arms.keys {
        if !writer_literals.contains(v) {
            push_finding(
                analyses,
                rel,
                RuleId::WireSchema,
                *pos,
                None,
                format!(
                    "verb `{v}` has a parse arm but no writer ever emits it — \
                     half-wired verb"
                ),
                out,
            );
        }
    }
    for (v, (rel, pos)) in &verb_writes.keys {
        if !verb_arms.keys.is_empty() && !verb_arms.keys.contains_key(v) {
            push_finding(
                analyses,
                rel,
                RuleId::WireSchema,
                *pos,
                None,
                format!("verb `{v}` is written but has no parse arm — half-wired verb"),
                out,
            );
        }
    }
}
