//! `aq-lint` — the workspace lint gate.
//!
//! ```text
//! aq-lint [--root=DIR] [--baseline=FILE] [--deny] [--json] [--list-rules]
//!         [--stats] [--lock-dot=FILE]
//! ```
//!
//! Exit codes: `0` clean (or advisory mode without `--deny`), `1`
//! findings at deny level under `--deny`, `2` internal error — so CI can
//! distinguish "the code has violations" from "the linter is broken".

use std::path::PathBuf;
use std::process::ExitCode;

use aq_analyze::{run_workspace, Baseline, LintConfig, Report, REGISTRY};

const EXIT_CLEAN: u8 = 0;
const EXIT_FINDINGS: u8 = 1;
const EXIT_INTERNAL: u8 = 2;

#[derive(Debug)]
struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    deny: bool,
    json: bool,
    list_rules: bool,
    stats: bool,
    lock_dot: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        deny: false,
        json: false,
        list_rules: false,
        stats: false,
        lock_dot: None,
    };
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--root=") {
            args.root = PathBuf::from(v);
        } else if let Some(v) = arg.strip_prefix("--baseline=") {
            args.baseline = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--lock-dot=") {
            args.lock_dot = Some(PathBuf::from(v));
        } else if arg == "--deny" {
            args.deny = true;
        } else if arg == "--json" {
            args.json = true;
        } else if arg == "--list-rules" {
            args.list_rules = true;
        } else if arg == "--stats" {
            args.stats = true;
        } else if arg == "--help" || arg == "-h" {
            return Err(HELP.to_string());
        } else {
            return Err(format!("unknown argument `{arg}`\n{HELP}"));
        }
    }
    Ok(args)
}

const HELP: &str = "usage: aq-lint [--root=DIR] [--baseline=FILE] [--deny] [--json] [--list-rules]
               [--stats] [--lock-dot=FILE]
  --root=DIR       workspace root to scan (default: .)
  --baseline=FILE  committed suppression file (lint-baseline.toml)
  --deny           exit 1 if any deny-level finding survives suppression
  --json           machine-readable line-delimited JSON output
  --list-rules     print the rule table (derived from the registry) and exit
  --stats          print a files/items/edges/wall-ms throughput line
  --lock-dot=FILE  write the R9 static lock-order graph as Graphviz DOT";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_report(report: &Report, json: bool) {
    if json {
        for f in &report.findings {
            println!(
                "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.col,
                f.rule.code(),
                f.severity.as_str(),
                json_escape(&f.message)
            );
        }
        println!(
            "{{\"summary\":{{\"findings\":{},\"files\":{},\"baseline_suppressed\":{},\"stale_baseline\":{}}}}}",
            report.findings.len(),
            report.files_scanned,
            report.baseline_suppressed,
            report.stale_baseline.len()
        );
        return;
    }
    for f in &report.findings {
        println!("{}", f.render());
    }
    for s in &report.stale_baseline {
        println!("warning: {s}");
    }
    println!(
        "aq-lint: {} finding(s) across {} file(s) ({} baseline-suppressed, {} stale baseline entr{})",
        report.findings.len(),
        report.files_scanned,
        report.baseline_suppressed,
        report.stale_baseline.len(),
        if report.stale_baseline.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    if args.list_rules {
        for r in REGISTRY {
            println!("{}  {}", r.code, r.describe);
        }
        return ExitCode::from(EXIT_CLEAN);
    }
    let baseline = match &args.baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!(
                    "aq-lint: internal error: cannot read {}: {e}",
                    path.display()
                );
                return ExitCode::from(EXIT_INTERNAL);
            }
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("aq-lint: internal error: {}: {e}", path.display());
                    return ExitCode::from(EXIT_INTERNAL);
                }
            },
        },
    };
    let cfg = LintConfig::for_workspace();
    let report = match run_workspace(&args.root, &cfg, baseline.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aq-lint: internal error: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    print_report(&report, args.json);
    if args.stats {
        println!(
            "aq-lint --stats: files={} items={} edges={} wall-ms={}",
            report.stats.files, report.stats.items, report.stats.call_edges, report.stats.wall_ms
        );
    }
    if let Some(path) = &args.lock_dot {
        if let Err(e) = std::fs::write(path, report.lock_graph.dot()) {
            eprintln!(
                "aq-lint: internal error: cannot write {}: {e}",
                path.display()
            );
            return ExitCode::from(EXIT_INTERNAL);
        }
    }
    if args.deny && report.has_deny() {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}
