//! Pathological-input suite for the recursive-descent parser: deeply
//! nested blocks, raw strings full of fake tokens, `cfg_attr` attributes,
//! and torn input. The parser's contract is graceful degradation — fewer
//! events, never a panic, a hang, or a phantom item.

use aq_analyze::{parse, FileAnalysis};

fn parsed(src: &str) -> aq_analyze::ParsedFile {
    let fa = FileAnalysis::new("crates/fix/src/lib.rs", src);
    parse(&fa)
}

#[test]
fn deeply_nested_blocks_parse_without_recursion_or_loss() {
    // 300 nested braces inside one body: the body scanner is iterative,
    // so depth costs nothing and the fn still comes out whole.
    let depth = 300;
    let mut src = String::from("pub fn deep() -> u32 {\n");
    for _ in 0..depth {
        src.push('{');
    }
    src.push_str("inner()");
    for _ in 0..depth {
        src.push('}');
    }
    src.push_str("\n}\n");
    let file = parsed(&src);
    assert_eq!(file.fns.len(), 1);
    assert_eq!(file.fns[0].name, "deep");
    assert!(
        file.fns[0].body.iter().any(
            |e| matches!(e, aq_analyze::parser::Event::Call { path, .. } if path == &["inner"])
        ),
        "the call at the bottom of the nesting is still seen"
    );
}

#[test]
fn deeply_nested_parens_do_not_hang_the_argument_skipper() {
    let depth = 300;
    let mut src = String::from("pub fn paren() -> u32 { f");
    for _ in 0..depth {
        src.push('(');
    }
    src.push('1');
    for _ in 0..depth {
        src.push(')');
    }
    src.push_str(" }\n");
    let file = parsed(&src);
    assert_eq!(file.fns.len(), 1, "the item boundary survives");
}

#[test]
fn raw_strings_full_of_fake_tokens_are_inert() {
    // The raw string contains an unbalanced `{`, a fake fn, a fake
    // panic! and a `"`-terminator decoy — all of it is one token.
    let src = "pub fn real() -> &'static str {\n    \
               r##\"fn fake() { panic!(\"boom\") } { { { \"# \"##\n}\n\
               pub fn after() {}\n";
    let file = parsed(src);
    let names: Vec<&str> = file.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["real", "after"], "no phantom items, no lost items");
    assert!(
        !file.fns.iter().any(|f| f.body.iter().any(
            |e| matches!(e, aq_analyze::parser::Event::MacroUse { name, .. } if name == "panic")
        )),
        "the panic! inside the raw string is not an event"
    );
}

#[test]
fn cfg_attr_test_does_not_exempt_an_item_from_analysis() {
    // `#[cfg_attr(test, allow(dead_code))]` still compiles the item into
    // non-test builds: it must NOT be marked as test code, or shipped
    // panics would silently escape R1/R8.
    let src = "#[cfg_attr(test, allow(dead_code))]\n\
               pub fn shipped(x: Option<u32>) -> u32 { x.unwrap() }\n\
               #[cfg(test)]\n\
               mod tests {\n    fn gated() {}\n}\n";
    let fa = FileAnalysis::new("crates/fix/src/lib.rs", src);
    let file = parse(&fa);
    let shipped = file
        .fns
        .iter()
        .find(|f| f.name == "shipped")
        .expect("parsed");
    assert!(
        !shipped.is_test,
        "cfg_attr(test, …) is a conditional attribute, not a test gate"
    );
    let gated = file.fns.iter().find(|f| f.name == "gated").expect("parsed");
    assert!(gated.is_test, "a real #[cfg(test)] module still gates");
}

#[test]
fn torn_input_degrades_to_fewer_items_without_panicking() {
    for src in [
        "pub fn half(",
        "impl {",
        "fn f() { let x = ",
        "struct S { x: ",
        "pub fn ok() {} fn g(",
        "#[",
        "match { { {",
        "r#\"unterminated",
    ] {
        let file = parsed(src);
        // Whatever parses, parses; nothing hangs or panics, and every
        // reported item corresponds to a name actually in the source.
        for f in &file.fns {
            assert!(
                src.contains(&f.name),
                "phantom item `{}` from {src:?}",
                f.name
            );
        }
    }
}

#[test]
fn let_bindings_drops_and_statement_ends_attribute_correctly() {
    let src = "pub fn flow(q: &Q) {\n    \
               let guard = q.acquire();\n    \
               q.peek().refresh();\n    \
               drop(guard);\n}\n";
    let file = parsed(src);
    let body = &file.fns[0].body;
    use aq_analyze::parser::Event;
    assert!(
        body.iter().any(|e| matches!(
            e,
            Event::Method { name, let_ident: Some(id), chained: false, .. }
                if name == "acquire" && id == "guard"
        )),
        "the let binding reaches the event: {body:?}"
    );
    assert!(
        body.iter().any(|e| matches!(
            e,
            Event::Method { name, chained: true, .. } if name == "peek"
        )),
        "a chained call is marked chained: {body:?}"
    );
    assert!(
        body.iter()
            .any(|e| matches!(e, Event::Drop { ident } if ident == "guard")),
        "drop(guard) releases the binding: {body:?}"
    );
}
