//! Agreement test between the rule registry and everything derived from
//! it: the `--list-rules` output of the real `aq-lint` binary, code
//! round-tripping, and the fixture suites' coverage of every rule.

use std::process::Command;

use aq_analyze::{RuleId, REGISTRY};

#[test]
fn list_rules_output_is_exactly_the_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_aq-lint"))
        .arg("--list-rules")
        .output()
        .expect("run aq-lint --list-rules");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 output");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        REGISTRY.len(),
        "--list-rules prints one line per registry row"
    );
    for (line, info) in lines.iter().zip(REGISTRY) {
        assert_eq!(
            *line,
            format!("{}  {}", info.code, info.describe),
            "--list-rules is derived from the registry verbatim"
        );
    }
}

#[test]
fn registry_codes_are_unique_and_round_trip() {
    for (i, info) in REGISTRY.iter().enumerate() {
        assert_eq!(
            RuleId::from_code(info.code),
            Some(info.rule),
            "code {} parses back to its rule",
            info.code
        );
        assert_eq!(info.rule.code(), info.code);
        assert_eq!(info.rule.describe(), info.describe);
        for other in &REGISTRY[i + 1..] {
            assert_ne!(info.code, other.code, "duplicate code {}", info.code);
            assert_ne!(info.rule, other.rule, "duplicate rule for {}", info.code);
        }
    }
    assert_eq!(RuleId::from_code("R99"), None);
}

#[test]
fn every_registry_rule_has_fixture_coverage() {
    // The fixture suites name each rule's code in a `---- Rn:`-style
    // banner (token rules) or a `// ---- Rn --` section (semantic rules).
    // A new registry row without a fixture fails here, keeping the two
    // in lockstep.
    let token_suite = include_str!("rule_fixtures.rs");
    let semantic_suite = include_str!("semantic_fixtures.rs");
    for info in REGISTRY {
        let covered = token_suite.contains(&format!("---- {}:", info.code))
            || semantic_suite
                .to_lowercase()
                .contains(&format!("fn {}_", info.code.to_lowercase()));
        assert!(
            covered,
            "rule {} has no fixture in rule_fixtures.rs or semantic_fixtures.rs",
            info.code
        );
    }
}
