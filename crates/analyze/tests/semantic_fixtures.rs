//! Fixture suite for the whole-workspace semantic passes (R8–R10), run
//! through `run_sources` over small in-memory workspaces. Each pass gets
//! one positive fixture (must fire) and one negative (must stay silent),
//! including the three contract cases the design calls out: a
//! `catch_unwind`-guarded panic that must NOT fire R8, a two-function
//! lock inversion that must fire R9, and a parse arm whose deletion must
//! fire R10.

use aq_analyze::{run_sources, Finding, LintConfig, Report, RuleId};

/// A config with every token-local scope empty and the fixture crates
/// exempted from R1, so only the semantic pass under test can fire.
fn cfg() -> LintConfig {
    LintConfig {
        r1_allow_prefixes: vec![(
            "crates/".into(),
            "semantic fixtures exercise R8-R10 only".into(),
        )],
        r2_scope: Vec::new(),
        r2_max_body_tokens: 100,
        r3_hot_files: Vec::new(),
        r4_wire_files: Vec::new(),
        r5_exempt_files: Vec::new(),
        r6_scope: Vec::new(),
        r6_exempt_files: Vec::new(),
        r7_scope: Vec::new(),
        r8_roots: Vec::new(),
        r8_index_prefixes: Vec::new(),
        r9_exempt_files: Vec::new(),
        r10_writer_files: Vec::new(),
        r10_parser_files: Vec::new(),
    }
}

fn run(sources: &[(&str, &str)], cfg: &LintConfig) -> Report {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    run_sources(&owned, cfg, None)
}

fn findings(sources: &[(&str, &str)], cfg: &LintConfig, rule: RuleId) -> Vec<Finding> {
    run(sources, cfg)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

// ---------------------------------------------------------------- R8 --

#[test]
fn r8_reports_a_transitive_unwrap_with_its_call_chain() {
    let src = "pub fn handle(x: Option<u32>) -> u32 { risky(x) }\n\
               fn risky(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let mut c = cfg();
    c.r8_roots = vec!["handle".into()];
    let found = findings(&[("crates/fix/src/lib.rs", src)], &c, RuleId::PanicReach);
    assert_eq!(found.len(), 1, "one reachable panic source: {found:?}");
    assert!(found[0].message.contains("`.unwrap()`"));
    assert!(
        found[0].message.contains("handle → risky"),
        "the finding carries the full root → panic chain: {}",
        found[0].message
    );
    assert_eq!(found[0].line, 2, "reported at the unwrap site");
}

#[test]
fn r8_covers_panic_macros_panic_any_and_scoped_index_expressions() {
    let src = "pub fn handle(v: &[u32], i: usize) -> u32 {\n    \
               if v.is_empty() { panic!(\"empty\"); }\n    \
               if i > v.len() { std::panic::panic_any(i); }\n    \
               v[i]\n}\n";
    let mut c = cfg();
    c.r8_roots = vec!["handle".into()];
    c.r8_index_prefixes = vec!["crates/fix/src/".into()];
    let found = findings(&[("crates/fix/src/lib.rs", src)], &c, RuleId::PanicReach);
    let whats: Vec<&str> = found
        .iter()
        .map(|f| f.message.split_whitespace().next().unwrap_or(""))
        .collect();
    assert_eq!(
        whats,
        ["`panic!`", "`panic_any`", "index"],
        "all three source kinds fire: {found:?}"
    );

    // Out of the index-scope prefix the same `v[i]` is silent.
    c.r8_index_prefixes = Vec::new();
    let found = findings(&[("crates/fix/src/lib.rs", src)], &c, RuleId::PanicReach);
    assert_eq!(found.len(), 2, "index expressions need explicit scoping");
}

#[test]
fn r8_does_not_cross_catch_unwind_guards() {
    // The panic lives behind `catch_unwind`, both as a direct closure
    // body and as a guarded call edge into a panicking helper: neither
    // may reach R8.
    let src = "pub fn handle(x: Option<u32>) -> u32 {\n    \
               let direct = std::panic::catch_unwind(|| x.unwrap());\n    \
               let via_call = std::panic::catch_unwind(|| risky(x));\n    \
               direct.or(via_call).unwrap_or(0)\n}\n\
               fn risky(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let mut c = cfg();
    c.r8_roots = vec!["handle".into()];
    assert!(
        findings(&[("crates/fix/src/lib.rs", src)], &c, RuleId::PanicReach).is_empty(),
        "catch_unwind-guarded panics must not fire R8"
    );
}

#[test]
fn r8_ignores_unreachable_and_test_functions_and_honours_allows() {
    // `orphan` panics but nothing reaches it from a root.
    let unreachable = "pub fn handle() -> u32 { 1 }\n\
                       fn orphan(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let mut c = cfg();
    c.r8_roots = vec!["handle".into()];
    assert!(findings(
        &[("crates/fix/src/lib.rs", unreachable)],
        &c,
        RuleId::PanicReach
    )
    .is_empty());

    // A justified allow directive suppresses the finding at the site.
    let allowed = "pub fn handle(x: Option<u32>) -> u32 {\n    \
                   // aq-lint: allow(R8): fixture-documented invariant\n    \
                   x.unwrap()\n}\n";
    assert!(findings(
        &[("crates/fix/src/lib.rs", allowed)],
        &c,
        RuleId::PanicReach
    )
    .is_empty());
}

// ---------------------------------------------------------------- R9 --

const LOCK_PAIR: &str = "pub struct Pair {\n    \
                         a: DebugMutex<u32>,\n    b: DebugMutex<u32>,\n}\n\
                         impl Pair {\n    \
                         pub fn new() -> Pair {\n        \
                         Pair { a: DebugMutex::new(\"fix.a\", 0), b: DebugMutex::new(\"fix.b\", 0) }\n    \
                         }\n";

#[test]
fn r9_flags_a_two_function_lock_inversion() {
    // `forward` acquires a then b; `backward` acquires b then a. The
    // static graph gains both edges and the cycle fires R9.
    let src = format!(
        "{LOCK_PAIR}    \
         pub fn forward(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n    \
         pub fn backward(&self) {{ let gb = self.b.lock(); let ga = self.a.lock(); drop(ga); drop(gb); }}\n}}\n"
    );
    let c = cfg();
    let report = run(&[("crates/fix/src/lib.rs", &src)], &c);
    let r9: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::StaticLockOrder)
        .collect();
    assert_eq!(r9.len(), 1, "one cycle report: {r9:?}");
    assert!(r9[0].message.contains("static lock-order cycle"));
    assert!(
        r9[0].message.contains("fix.a") && r9[0].message.contains("fix.b"),
        "the cycle names both locks: {}",
        r9[0].message
    );
    assert_eq!(report.lock_graph.nodes, ["fix.a", "fix.b"]);
    assert!(report.lock_graph.cycle().is_some());
}

#[test]
fn r9_consistent_order_yields_an_acyclic_graph_and_no_finding() {
    let src = format!(
        "{LOCK_PAIR}    \
         pub fn forward(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n    \
         pub fn again(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n}}\n"
    );
    let c = cfg();
    let report = run(&[("crates/fix/src/lib.rs", &src)], &c);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::StaticLockOrder),
        "a consistent order is not a cycle"
    );
    let edges: Vec<(String, String)> = report
        .lock_graph
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    assert_eq!(edges, [("fix.a".to_string(), "fix.b".to_string())]);
    assert_eq!(report.lock_graph.cycle(), None);
    // The DOT rendering carries both nodes and the one edge.
    let dot = report.lock_graph.dot();
    assert!(dot.contains("\"fix.a\" -> \"fix.b\";"), "{dot}");
}

#[test]
fn r9_dropped_guards_do_not_create_edges() {
    // The first guard is dropped before the second acquisition: the
    // acquisitions are disjoint, never nested, so no edge may appear.
    let src = format!(
        "{LOCK_PAIR}    \
         pub fn disjoint(&self) {{ let ga = self.a.lock(); drop(ga); let gb = self.b.lock(); drop(gb); }}\n}}\n"
    );
    let c = cfg();
    let report = run(&[("crates/fix/src/lib.rs", &src)], &c);
    assert!(
        report.lock_graph.edges.is_empty(),
        "{:?}",
        report.lock_graph
    );
}

#[test]
fn r9_inversion_across_functions_via_the_call_graph() {
    // The second acquisition is hidden behind a helper call: the
    // may-acquire fixpoint must propagate `fix.b` up into `forward`'s
    // held-set walk, and the inverted `backward` closes the cycle.
    let src = format!(
        "{LOCK_PAIR}    \
         pub fn forward(&self) {{ let ga = self.a.lock(); self.take_b(); drop(ga); }}\n    \
         fn take_b(&self) {{ let gb = self.b.lock(); drop(gb); }}\n    \
         pub fn backward(&self) {{ let gb = self.b.lock(); self.take_a(); drop(gb); }}\n    \
         fn take_a(&self) {{ let ga = self.a.lock(); drop(ga); }}\n}}\n"
    );
    let c = cfg();
    let report = run(&[("crates/fix/src/lib.rs", &src)], &c);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::StaticLockOrder),
        "the cycle hides one call deep: {:?}",
        report.lock_graph
    );
}

#[test]
fn r9_ignores_locks_defined_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    \
               use super::*;\n    \
               #[test]\n    fn t() {\n        \
               let a = DebugMutex::new(\"test.a\", 0u32);\n        \
               let g = a.lock();\n        drop(g);\n    }\n}\n";
    let c = cfg();
    let report = run(&[("crates/fix/src/lib.rs", src)], &c);
    assert!(
        report.lock_graph.nodes.is_empty(),
        "fixture locks in test code must not pollute the graph: {:?}",
        report.lock_graph
    );
}

// --------------------------------------------------------------- R10 --

/// Writer: renders two fields. Parser: reads them back. The pair is the
/// smallest complete wire schema.
const WIRE_WRITER: &str = "pub fn render(n: u64) -> Vec<(&'static str, u64)> {\n    \
                           vec![(\"alpha\", n), (\"beta\", n + 1)]\n}\n";
const WIRE_PARSER_FULL: &str = "pub fn parse(j: &Json) -> (u64, u64) {\n    \
                                (j.get(\"alpha\"), j.get(\"beta\"))\n}\n";
const WIRE_PARSER_NO_BETA: &str = "pub fn parse(j: &Json) -> u64 {\n    \
                                   j.get(\"alpha\")\n}\n";

fn wire_cfg() -> LintConfig {
    let mut c = cfg();
    c.r10_writer_files = vec!["crates/w/src/wire.rs".into()];
    c.r10_parser_files = vec!["crates/w/src/parse.rs".into()];
    c
}

#[test]
fn r10_silent_when_both_sides_agree() {
    let sources = [
        ("crates/w/src/wire.rs", WIRE_WRITER),
        ("crates/w/src/parse.rs", WIRE_PARSER_FULL),
    ];
    assert!(findings(&sources, &wire_cfg(), RuleId::WireSchema).is_empty());
}

#[test]
fn r10_fires_when_a_parse_arm_is_deleted() {
    // Same writer, the `beta` read deleted: the written field is now
    // consumed nowhere and R10 must fire — the acceptance contract for
    // schema drift.
    let sources = [
        ("crates/w/src/wire.rs", WIRE_WRITER),
        ("crates/w/src/parse.rs", WIRE_PARSER_NO_BETA),
    ];
    let found = findings(&sources, &wire_cfg(), RuleId::WireSchema);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("`beta`"));
    assert!(found[0].message.contains("written but never consumed"));
    assert_eq!(
        found[0].file, "crates/w/src/wire.rs",
        "reported at the write site"
    );
}

#[test]
fn r10_flags_a_parse_only_field() {
    // The parser reads `gamma` but no writer ever produces it: a typo or
    // a writer nobody updated.
    let parser = "pub fn parse(j: &Json) -> (u64, u64, u64) {\n    \
                  (j.get(\"alpha\"), j.get(\"beta\"), j.get(\"gamma\"))\n}\n";
    let sources = [
        ("crates/w/src/wire.rs", WIRE_WRITER),
        ("crates/w/src/parse.rs", parser),
    ];
    let found = findings(&sources, &wire_cfg(), RuleId::WireSchema);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("`gamma`"));
    assert!(found[0].message.contains("parsed but never written"));
}

#[test]
fn r10_reads_in_test_code_count_as_consumption() {
    // A response-schema lockdown test is a legitimate consumer: fields
    // read only from `#[cfg(test)]` code keep the writer honest.
    let reader = "#[cfg(test)]\nmod tests {\n    \
                  #[test]\n    fn schema() {\n        \
                  let j = wire();\n        \
                  assert!(j.get(\"alpha\") <= j.get(\"beta\"));\n    }\n}\n";
    let sources = [
        ("crates/w/src/wire.rs", WIRE_WRITER),
        ("crates/w/src/parse.rs", "pub fn parse() {}\n"),
        ("crates/w/src/schema_test.rs", reader),
    ];
    assert!(findings(&sources, &wire_cfg(), RuleId::WireSchema).is_empty());
}

#[test]
fn r10_format_strings_and_call_arguments_are_not_wire_keys() {
    // `("…", x)` shapes that are call arguments or format strings must
    // not register as written fields.
    let writer = "pub fn log(n: u64) -> String {\n    \
                  let m = DebugMutex::new(\"serve.fixture\", n);\n    \
                  format!(\"rendering: {}\", m.lock())\n}\n\
                  pub fn render(n: u64) -> Vec<(&'static str, u64)> { vec![(\"alpha\", n)] }\n";
    let sources = [
        ("crates/w/src/wire.rs", writer),
        ("crates/w/src/parse.rs", WIRE_PARSER_NO_BETA),
    ];
    assert!(
        findings(&sources, &wire_cfg(), RuleId::WireSchema).is_empty(),
        "DebugMutex::new and format! first arguments are not wire writes"
    );
}
