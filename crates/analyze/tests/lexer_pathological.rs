//! Pathological inputs for the hand-rolled lexer: the rule engine is only
//! as trustworthy as the token stream, so the constructs that break
//! grep-based linters — nested block comments, raw strings with hash
//! guards, lifetimes next to char literals — must lex correctly, and
//! *unterminated* forms must terminate the lexer rather than the process.

use aq_analyze::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* outer /* inner /* deep */ */ still outer */ fn";
    let toks = kinds(src);
    assert_eq!(toks.len(), 2, "{toks:?}");
    assert_eq!(toks[0].0, TokKind::BlockComment);
    assert_eq!(toks[0].1, "/* outer /* inner /* deep */ */ still outer */");
    assert_eq!(toks[1], (TokKind::Ident, "fn".to_string()));
}

#[test]
fn raw_strings_ignore_embedded_quotes_and_comment_starters() {
    // The payload contains `"#` and `// unwrap(` — a lesser lexer would
    // end the string early or hallucinate a comment.
    let src = r####"let s = r##"quote "# and // unwrap( inside"## ;"####;
    let toks = kinds(src);
    let raw = toks
        .iter()
        .find(|(k, _)| *k == TokKind::RawStr)
        .expect("raw string token");
    assert_eq!(raw.1, r####"r##"quote "# and // unwrap( inside"##"####);
    assert!(
        !toks.iter().any(|(k, _)| *k == TokKind::LineComment),
        "no comment inside the raw string: {toks:?}"
    );
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .collect();
    let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
    assert_eq!(lifetimes.len(), 2, "{toks:?}");
    assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
    assert_eq!(chars.len(), 1, "{toks:?}");
    assert_eq!(chars[0].1, "'a'");
}

#[test]
fn escaped_chars_and_byte_literals() {
    let toks = kinds(r"let a = '\''; let b = '\u{41}'; let c = b'\n';");
    let got: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| matches!(k, TokKind::Char | TokKind::Byte))
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(got, [r"'\''", r"'\u{41}'", r"b'\n'"]);
}

#[test]
fn byte_and_raw_byte_strings() {
    let src = r###"let a = b"bytes"; let b = br#"raw "quoted" bytes"#;"###;
    let toks = kinds(src);
    assert!(toks.contains(&(TokKind::ByteStr, "b\"bytes\"".to_string())));
    assert!(toks.contains(&(
        TokKind::RawByteStr,
        r###"br#"raw "quoted" bytes"#"###.to_string()
    )));
}

#[test]
fn raw_identifiers_are_not_raw_strings() {
    let toks = kinds("let r#type = r#struct; let s = r#\"text\"#;");
    let raw_idents: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::RawIdent)
        .collect();
    assert_eq!(raw_idents.len(), 2, "{toks:?}");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::RawStr && t == "r#\"text\"#"));
}

#[test]
fn numeric_literals_and_ranges() {
    let toks = kinds("let a = 1..2; let b = 1.5e-10; let c = 0xFFu32; let d = 2f64;");
    // `1..2` must NOT merge into a float
    assert!(toks.contains(&(TokKind::Int, "1".to_string())), "{toks:?}");
    assert!(
        toks.contains(&(TokKind::Punct, "..".to_string())),
        "{toks:?}"
    );
    assert!(
        toks.contains(&(TokKind::Float, "1.5e-10".to_string())),
        "{toks:?}"
    );
    assert!(
        toks.contains(&(TokKind::Int, "0xFFu32".to_string())),
        "{toks:?}"
    );
    assert!(
        toks.contains(&(TokKind::Float, "2f64".to_string())),
        "{toks:?}"
    );
}

#[test]
fn string_escapes_hide_quotes_and_comment_markers() {
    let src = r#"let s = "not a comment // and an escaped \" quote";"#;
    let toks = kinds(src);
    assert!(
        toks.iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("escaped")),
        "{toks:?}"
    );
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::LineComment));
}

#[test]
fn unterminated_forms_do_not_hang_or_panic() {
    // Each of these is malformed; the lexer must consume to EOF and stop.
    for src in [
        "/* never closed",
        "/* outer /* inner */ still open",
        "\"no closing quote",
        "r#\"no closing guard\"",
        "b\"open byte string",
        "'",
        "let x = ",
    ] {
        let toks = lex(src);
        assert!(
            toks.iter().all(|t| t.end <= src.len()),
            "token spans stay in bounds for {src:?}"
        );
    }
}

#[test]
fn multibyte_source_keeps_spans_on_char_boundaries() {
    let src = "// ε-tolerance → compact\nlet ε = \"naïve\";";
    for t in lex(src) {
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        let _ = t.text(src); // must not slice mid-codepoint
    }
}
