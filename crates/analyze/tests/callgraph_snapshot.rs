//! Pins the call graph the resolver + graph builder produce for a small
//! two-file workspace: free-fn calls, associated-fn calls, method calls
//! through `self` fields and locals, guarded edges, and cross-file
//! resolution. The snapshot format is `caller -> callee [guarded]` lines,
//! sorted — any resolver regression shows up as a diff here.

use aq_analyze::snapshot_sources;

#[test]
fn two_file_workspace_snapshot() {
    let engine = "pub struct Engine;\n\
                  impl Engine {\n    \
                  pub fn run(&self) -> u32 {\n        \
                  let warm = helper();\n        \
                  self.step(warm);\n        \
                  let shielded = std::panic::catch_unwind(|| fragile(warm));\n        \
                  shielded.unwrap_or(0)\n    }\n    \
                  fn step(&self, x: u32) -> u32 { leaf(x) }\n}\n\
                  pub fn helper() -> u32 { leaf(1) }\n\
                  pub fn fragile(x: u32) -> u32 { x }\n\
                  pub fn leaf(x: u32) -> u32 { x }\n";
    let driver = "use crate::engine::Engine;\n\
                  pub fn drive() -> u32 {\n    \
                  let e = Engine::new();\n    e.run()\n}\n\
                  impl Engine {\n    pub fn new() -> Engine { Engine }\n}\n";
    let lines = snapshot_sources(&[
        ("crates/fix/src/engine.rs", engine),
        ("crates/fix/src/driver.rs", driver),
    ]);
    let expected = [
        "Engine::run -> Engine::step",
        "Engine::run -> fragile [guarded]",
        "Engine::run -> helper",
        "Engine::step -> leaf",
        "drive -> Engine::new",
        "drive -> Engine::run",
        "helper -> leaf",
    ];
    assert_eq!(
        lines,
        expected,
        "call-graph snapshot drifted:\n{}",
        lines.join("\n")
    );
}

#[test]
fn test_functions_are_excluded_from_the_graph() {
    let src = "pub fn shipped() { leaf() }\n\
               pub fn leaf() {}\n\
               #[cfg(test)]\n\
               mod tests {\n    \
               use super::*;\n    \
               #[test]\n    fn t() { shipped(); leaf(); }\n}\n";
    let lines = snapshot_sources(&[("crates/fix/src/lib.rs", src)]);
    assert_eq!(
        lines,
        ["shipped -> leaf"],
        "test callers never enter the graph"
    );
}

#[test]
fn ambiguous_bare_names_resolve_to_nothing_not_everything() {
    // Two crates each define `init`; a bare `init()` call in a third file
    // must not fabricate edges to both.
    let a = "pub fn init() {}\n";
    let b = "pub fn init() {}\n";
    let c = "pub fn boot() { init() }\n";
    let lines = snapshot_sources(&[
        ("crates/a/src/lib.rs", a),
        ("crates/b/src/lib.rs", b),
        ("crates/c/src/lib.rs", c),
    ]);
    assert!(
        lines.is_empty(),
        "ambiguous resolution must stay empty, got:\n{}",
        lines.join("\n")
    );
}
