//! One positive (must fire) and one negative (must stay silent) fixture
//! per rule, run through `lint_source` with a small synthetic scope so
//! the fixtures are independent of the real workspace policy.

use aq_analyze::{lint_source, LintConfig, RuleId};

fn cfg() -> LintConfig {
    LintConfig {
        r1_allow_prefixes: vec![("crates/harness/".into(), "fixture harness crate".into())],
        r2_scope: vec!["crates/lib/src/".into()],
        r2_max_body_tokens: 12,
        r3_hot_files: vec!["crates/lib/src/hot.rs".into()],
        r4_wire_files: vec!["crates/lib/src/wire.rs".into()],
        r5_exempt_files: vec!["crates/lib/src/eps.rs".into()],
        r6_scope: vec!["crates/srv/src/".into()],
        r6_exempt_files: vec!["crates/srv/src/backoff.rs".into()],
        r7_scope: vec!["crates/srv/src/".into(), "crates/smp/src/".into()],
        // the semantic passes (R8–R10) have their own fixture suite
        r8_roots: Vec::new(),
        r8_index_prefixes: Vec::new(),
        r9_exempt_files: Vec::new(),
        r10_writer_files: Vec::new(),
        r10_parser_files: Vec::new(),
    }
}

fn rules_at(rel: &str, src: &str) -> Vec<RuleId> {
    lint_source(rel, src, &cfg())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// ---- R1: no panic-family calls in non-test library code ----

#[test]
fn r1_flags_unwrap_expect_and_panic_macros() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               let y = x.unwrap();\n    \
               let z = x.expect(\"present\");\n    \
               if y != z { panic!(\"mismatch\"); }\n    \
               y\n}\n";
    let found = rules_at("crates/lib/src/lib.rs", src);
    assert_eq!(
        found,
        [
            RuleId::NoPanicPath,
            RuleId::NoPanicPath,
            RuleId::NoPanicPath
        ],
        "unwrap, expect and panic! each fire once"
    );
}

#[test]
fn r1_silent_in_tests_allowed_crates_and_test_modules() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    // tests/ directories are non-library code
    assert!(rules_at("crates/lib/tests/it.rs", src).is_empty());
    // crates under an r1 allow prefix are exempt wholesale
    assert!(rules_at("crates/harness/src/lib.rs", src).is_empty());
    // #[cfg(test)] modules inside library files are exempt
    let in_test_mod = "#[cfg(test)]\nmod tests {\n    \
                       fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert!(rules_at("crates/lib/src/lib.rs", in_test_mod).is_empty());
}

#[test]
fn r1_suppression_works_on_the_line_above_only() {
    let allowed = "pub fn f(x: Option<u32>) -> u32 {\n    \
                   // aq-lint: allow(R1): fixture-justified invariant\n    \
                   x.unwrap()\n}\n";
    assert!(rules_at("crates/lib/src/lib.rs", allowed).is_empty());

    // Two lines of distance is out of range: the finding survives.
    let too_far = "pub fn f(x: Option<u32>) -> u32 {\n    \
                   // aq-lint: allow(R1): fixture-justified invariant\n    \
                   let _ = 0;\n    \
                   x.unwrap()\n}\n";
    assert_eq!(
        rules_at("crates/lib/src/lib.rs", too_far),
        [RuleId::NoPanicPath]
    );
}

// ---- R2: infallible public APIs delegate to their try_* sibling ----

#[test]
fn r2_flags_infallible_twin_that_reimplements() {
    let src = "pub fn try_get(x: u32) -> Result<u32, ()> { Ok(x + 1) }\n\
               pub fn get(x: u32) -> u32 { x + 1 }\n";
    assert_eq!(
        rules_at("crates/lib/src/api.rs", src),
        [RuleId::InfallibleDelegate]
    );
}

#[test]
fn r2_accepts_a_thin_delegate() {
    let src = "pub fn try_get(x: u32) -> Result<u32, ()> { Ok(x + 1) }\n\
               pub fn get(x: u32) -> u32 { try_get(x).unwrap_or(0) }\n";
    assert!(rules_at("crates/lib/src/api.rs", src).is_empty());
}

#[test]
fn r2_flags_an_oversized_delegate_body() {
    // Calls try_get, but the body is far beyond r2_max_body_tokens: the
    // logic belongs in the fallible sibling.
    let src = "pub fn try_get(x: u32) -> Result<u32, ()> { Ok(x + 1) }\n\
               pub fn get(x: u32) -> u32 {\n    \
               let a = x + 1; let b = a * 2; let c = b - x; let d = c ^ a;\n    \
               try_get(d).unwrap_or(a + b + c)\n}\n";
    assert_eq!(
        rules_at("crates/lib/src/api.rs", src),
        [RuleId::InfallibleDelegate]
    );
}

// ---- R3: no unbounded map caches in hot-path modules ----

#[test]
fn r3_flags_cache_named_map_fields_in_hot_files() {
    let src = "use std::collections::HashMap;\n\
               pub struct Engine {\n    compute_cache: HashMap<u64, u64>,\n}\n";
    assert_eq!(
        rules_at("crates/lib/src/hot.rs", src),
        [RuleId::UnboundedCache]
    );
}

#[test]
fn r3_silent_for_non_cache_maps_and_cold_files() {
    // Same shape, name does not smell like a cache: a map is fine.
    let table = "use std::collections::HashMap;\n\
                 pub struct Engine {\n    symbol_table: HashMap<u64, u64>,\n}\n";
    assert!(rules_at("crates/lib/src/hot.rs", table).is_empty());
    // Cache-named map outside the hot-file list: out of scope.
    let cache = "use std::collections::HashMap;\n\
                 pub struct Engine {\n    compute_cache: HashMap<u64, u64>,\n}\n";
    assert!(rules_at("crates/lib/src/cold.rs", cache).is_empty());
}

#[test]
fn r3_default_scope_covers_the_weight_op_cache_module() {
    // the workspace default hot-file list must include the handle-level
    // weight-op cache module, so an unbounded map can never sneak into it
    let defaults = LintConfig::default();
    assert!(
        defaults
            .r3_hot_files
            .iter()
            .any(|f| f == "crates/core/src/wops.rs"),
        "wops.rs must be R3-scoped by default"
    );
    let src = "use std::collections::HashMap;\n\
               pub struct WeightOpCache {\n    \
               pairs_cache: HashMap<(u8, u32, u32), u32>,\n}\n";
    let found: Vec<RuleId> = lint_source("crates/core/src/wops.rs", src, &defaults)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    assert_eq!(found, [RuleId::UnboundedCache]);
}

// ---- R4: no bare narrowing casts in wire/snapshot code ----

#[test]
fn r4_flags_narrowing_casts_in_wire_files() {
    let src = "pub fn encode(x: u64) -> u32 { x as u32 }\n";
    assert_eq!(
        rules_at("crates/lib/src/wire.rs", src),
        [RuleId::NarrowingCast]
    );
}

#[test]
fn r4_accepts_widening_casts_and_non_wire_files() {
    let widen = "pub fn encode(x: u32) -> u64 { x as u64 }\n";
    assert!(rules_at("crates/lib/src/wire.rs", widen).is_empty());
    let narrow = "pub fn encode(x: u64) -> u32 { x as u32 }\n";
    assert!(rules_at("crates/lib/src/other.rs", narrow).is_empty());
}

// ---- R5: no direct float-literal ==/!= outside the epsilon module ----

#[test]
fn r5_flags_float_literal_equality() {
    let src = "pub fn is_zero(x: f64) -> bool { x == 0.0 }\n\
               pub fn nonzero(x: f64) -> bool { 0.0 != x }\n";
    assert_eq!(
        rules_at("crates/lib/src/math.rs", src),
        [RuleId::FloatEq, RuleId::FloatEq]
    );
}

#[test]
fn r5_silent_in_the_epsilon_module_and_for_integers() {
    let src = "pub fn is_zero(x: f64) -> bool { x == 0.0 }\n";
    assert!(rules_at("crates/lib/src/eps.rs", src).is_empty());
    let ints = "pub fn is_zero(x: u64) -> bool { x == 0 }\n";
    assert!(rules_at("crates/lib/src/math.rs", ints).is_empty());
}

// ---- R6: no bare thread::sleep in serve code outside backoff ----

#[test]
fn r6_flags_bare_thread_sleep_in_scope_including_bin_entry_points() {
    let src = "pub fn spin(d: std::time::Duration) {\n    std::thread::sleep(d);\n}\n";
    assert_eq!(
        rules_at("crates/srv/src/server.rs", src),
        [RuleId::BareSleep]
    );
    // `use std::thread;` + `thread::sleep` is the same call, differently spelt
    let via_use = "use std::thread;\n\
                   pub fn spin(d: std::time::Duration) { thread::sleep(d); }\n";
    assert_eq!(
        rules_at("crates/srv/src/server.rs", via_use),
        [RuleId::BareSleep]
    );
    // src/bin entry points are non-library code for R1 but stay in R6
    // scope: a CLI retry loop must not busy-sleep either
    assert_eq!(
        rules_at("crates/srv/src/bin/cli.rs", src),
        [RuleId::BareSleep]
    );
}

#[test]
fn r6_silent_for_backoff_module_test_code_and_out_of_scope_files() {
    let src = "pub fn spin(d: std::time::Duration) {\n    std::thread::sleep(d);\n}\n";
    // the backoff module owns the one sanctioned call site
    assert!(rules_at("crates/srv/src/backoff.rs", src).is_empty());
    // out of scope: other crates may sleep as they please
    assert!(rules_at("crates/lib/src/lib.rs", src).is_empty());
    // test modules inside scoped files are exempt
    let in_test = "#[cfg(test)]\nmod tests {\n    \
                   fn nap() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n}\n";
    assert!(rules_at("crates/srv/src/server.rs", in_test).is_empty());
    // the sanctioned wrapper itself never matches (prev2 is `backoff`)
    let wrapped = "pub fn spin(d: std::time::Duration) { crate::backoff::sleep(d); }\n";
    assert!(rules_at("crates/srv/src/server.rs", wrapped).is_empty());
}

// ---- R7: no unseeded randomness in sim/serve code ----

#[test]
fn r7_flags_entropy_drawing_constructors_in_scope() {
    let src = "pub fn draw() -> u64 {\n    \
               let mut rng = rand::thread_rng();\n    rng.gen()\n}\n";
    assert_eq!(
        rules_at("crates/smp/src/sample.rs", src),
        [RuleId::UnseededRandom]
    );
    // OS-seeded constructors and the std hasher trick each fire too
    let entropy = "pub fn rng() -> SmallRng { SmallRng::from_entropy() }\n\
                   pub fn os() -> u64 { OsRng.next_u64() }\n\
                   pub fn h() -> u64 { RandomState::new().hash_one(1u64) }\n";
    assert_eq!(
        rules_at("crates/smp/src/sample.rs", entropy),
        [
            RuleId::UnseededRandom,
            RuleId::UnseededRandom,
            RuleId::UnseededRandom
        ]
    );
    // bin entry points stay in scope: a CLI seeding itself from the OS
    // breaks end-to-end shot reproducibility just as thoroughly
    assert_eq!(
        rules_at("crates/srv/src/bin/cli.rs", src),
        [RuleId::UnseededRandom]
    );
}

#[test]
fn r7_silent_for_seeded_generators_tests_and_out_of_scope_files() {
    // an explicitly seeded generator is the sanctioned construction
    let seeded = "pub fn rng(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }\n\
                  pub fn split(seed: u64) -> u64 { splitmix64(seed) }\n";
    assert!(rules_at("crates/smp/src/sample.rs", seeded).is_empty());
    // out of scope: other crates may draw entropy as they please
    let src = "pub fn draw() -> u64 { rand::thread_rng().gen() }\n";
    assert!(rules_at("crates/lib/src/lib.rs", src).is_empty());
    // test modules inside scoped files are exempt
    let in_test = "#[cfg(test)]\nmod tests {\n    \
                   fn f() -> u64 { rand::thread_rng().gen() }\n}\n";
    assert!(rules_at("crates/smp/src/sample.rs", in_test).is_empty());
}

// ---- A0: suppression directives need known rules and a real reason ----

#[test]
fn a0_flags_reasonless_or_unknown_suppressions() {
    let short = "// aq-lint: allow(R1): nope\npub fn f() {}\n";
    assert_eq!(
        rules_at("crates/lib/src/lib.rs", short),
        [RuleId::BadSuppression],
        "a sub-8-character reason is not a justification"
    );
    let unknown = "// aq-lint: allow(R99): rule ninety-nine does not exist\npub fn f() {}\n";
    assert_eq!(
        rules_at("crates/lib/src/lib.rs", unknown),
        [RuleId::BadSuppression]
    );
}

#[test]
fn a0_accepts_a_well_formed_directive_and_reports_positions() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               // aq-lint: allow(R1): invariant documented in the fixture\n    \
               x.unwrap()\n}\n";
    assert!(rules_at("crates/lib/src/lib.rs", src).is_empty());

    // Findings carry 1-based file:line:col coordinates.
    let bare = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = lint_source("crates/lib/src/lib.rs", bare, &cfg());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].file, "crates/lib/src/lib.rs");
    assert_eq!(findings[0].line, 1);
    assert!(
        findings[0].col > 30,
        "column points into the line: {:?}",
        findings[0]
    );
}
