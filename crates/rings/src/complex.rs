//! Double-precision complex numbers and the tolerance comparison used by
//! the *numerical* QMDD representation.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number in IEEE 754 double precision — the number system of the
/// state-of-the-art numerical QMDD packages the paper evaluates against.
///
/// # Examples
///
/// ```
/// use aq_rings::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ}` on the unit circle.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared absolute value `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Absolute value.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Exact zero test (bit-level, like `ε = 0` in the paper).
    pub fn is_exactly_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// The tolerance value ε of Sec. III of the paper: two complex numbers are
/// identified when both component distances are `≤ ε`.
///
/// `Tolerance::exact()` (ε = 0) identifies only bit-identical values — the
/// “highest possible precision using floating point numbers” extreme of
/// Fig. 2; larger values trade accuracy for compactness.
///
/// # Examples
///
/// ```
/// use aq_rings::{Complex64, Tolerance};
///
/// let t = Tolerance::new(1e-10);
/// let a = Complex64::new(1.0 / 3.0, 0.0);
/// let b = Complex64::new(1.0 / 3.0 + 1e-12, 0.0);
/// assert!(t.eq(a, b));
/// assert!(!Tolerance::exact().eq(a, b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    eps: f64,
}

impl Tolerance {
    /// A tolerance of `eps` per component.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or not finite.
    pub fn new(eps: f64) -> Self {
        assert!(eps.is_finite() && eps >= 0.0, "tolerance must be ≥ 0");
        Tolerance { eps }
    }

    /// The exact comparison, ε = 0.
    pub fn exact() -> Self {
        Tolerance { eps: 0.0 }
    }

    /// The ε value.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Whether this is the exact comparison (ε = 0).
    pub fn is_exact(&self) -> bool {
        is_exact_eps(self.eps)
    }

    /// Component-wise comparison within ε.
    pub fn eq(&self, a: Complex64, b: Complex64) -> bool {
        (a.re - b.re).abs() <= self.eps && (a.im - b.im).abs() <= self.eps
    }

    /// Is `v` within ε of zero?
    pub fn is_zero(&self, v: Complex64) -> bool {
        v.re.abs() <= self.eps && v.im.abs() <= self.eps
    }

    /// Is `v` within ε of one?
    pub fn is_one(&self, v: Complex64) -> bool {
        (v.re - 1.0).abs() <= self.eps && v.im.abs() <= self.eps
    }
}

/// Whether a raw ε names the exact regime. This is *the* place in the
/// workspace where an ε is compared against zero — every other module
/// asks this function (or [`Tolerance::is_exact`]) so the decision stays
/// inside the epsilon module.
pub fn is_exact_eps(eps: f64) -> bool {
    eps == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * b, Complex64::new(-4.0, -5.5));
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-15);
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn norms_and_conj() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!((a * a.conj()).re, 25.0);
    }

    #[test]
    fn polar() {
        let c = Complex64::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert!((c - Complex64::I).abs() < 1e-15);
    }

    #[test]
    fn tolerance_semantics() {
        let t = Tolerance::new(1e-6);
        assert!(t.eq(Complex64::ONE, Complex64::new(1.0 + 5e-7, -5e-7)));
        assert!(!t.eq(Complex64::ONE, Complex64::new(1.0 + 2e-6, 0.0)));
        assert!(t.is_zero(Complex64::new(1e-7, -1e-7)));
        assert!(t.is_one(Complex64::new(1.0, 1e-7)));
        // exact tolerance only matches identical bits
        assert!(Tolerance::exact().eq(Complex64::ONE, Complex64::ONE));
        assert!(!Tolerance::exact().eq(Complex64::ONE, Complex64::new(1.0 + f64::EPSILON, 0.0)));
    }

    #[test]
    #[should_panic(expected = "tolerance must be ≥ 0")]
    fn negative_tolerance_rejected() {
        let _ = Tolerance::new(-1.0);
    }
}
