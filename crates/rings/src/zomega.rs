//! The ring of cyclotomic integers `Z[ω]`, `ω = e^{iπ/4}`.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use aq_bigint::IBig;

use crate::Zroot2;

/// A cyclotomic integer `a·ω³ + b·ω² + c·ω + d` with `ω = e^{iπ/4}`.
///
/// `ω` is a primitive 8-th root of unity, so `ω⁴ = −1`, `ω² = i` and
/// `√2 = ω − ω³`. The coefficient order `(a, b, c, d)` follows the paper.
///
/// `Z[ω]` is a **Euclidean ring** (Sec. IV-B of the paper): division with
/// remainder ([`Zomega::div_rem`]) and greatest common divisors
/// ([`Zomega::gcd`]) exist, which is what makes the GCD normalization
/// scheme of algebraic QMDDs possible.
///
/// # Examples
///
/// ```
/// use aq_rings::Zomega;
///
/// let omega = Zomega::omega();
/// assert_eq!(omega.pow(8), Zomega::one());
/// assert_eq!(omega.pow(4), -&Zomega::one());
/// // √2 = ω − ω³
/// let sqrt2 = &omega - &omega.pow(3);
/// assert_eq!(&sqrt2 * &sqrt2, Zomega::from_int(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Zomega {
    /// Coefficient of `ω³`.
    pub a: IBig,
    /// Coefficient of `ω²`.
    pub b: IBig,
    /// Coefficient of `ω`.
    pub c: IBig,
    /// Constant coefficient.
    pub d: IBig,
}

impl Zomega {
    /// Creates `a·ω³ + b·ω² + c·ω + d`.
    pub fn new(a: IBig, b: IBig, c: IBig, d: IBig) -> Self {
        Zomega { a, b, c, d }
    }

    /// The value `0`.
    pub fn zero() -> Self {
        Zomega::from_int(0)
    }

    /// The value `1`.
    pub fn one() -> Self {
        Zomega::from_int(1)
    }

    /// The rational integer `n`.
    pub fn from_int(n: i64) -> Self {
        Zomega::new(IBig::zero(), IBig::zero(), IBig::zero(), IBig::from(n))
    }

    /// The generator `ω = e^{iπ/4}`.
    pub fn omega() -> Self {
        Zomega::new(IBig::zero(), IBig::zero(), IBig::one(), IBig::zero())
    }

    /// The imaginary unit `i = ω²`.
    pub fn i() -> Self {
        Zomega::new(IBig::zero(), IBig::one(), IBig::zero(), IBig::zero())
    }

    /// `√2 = ω − ω³`.
    pub fn sqrt2() -> Self {
        Zomega::new(IBig::neg_one(), IBig::zero(), IBig::one(), IBig::zero())
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.a.is_zero() && self.b.is_zero() && self.c.is_zero() && self.d.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.a.is_zero() && self.b.is_zero() && self.c.is_zero() && self.d.is_one()
    }

    /// Coefficients as an array `[a, b, c, d]`.
    pub fn coeffs(&self) -> [&IBig; 4] {
        [&self.a, &self.b, &self.c, &self.d]
    }

    /// Complex conjugate: `ω ↦ ω⁻¹ = −ω³`, giving
    /// `conj(aω³ + bω² + cω + d) = −cω³ − bω² − aω + d`.
    pub fn conj(&self) -> Zomega {
        Zomega::new(-&self.c, -&self.b, -&self.a, self.d.clone())
    }

    /// The squared norm `N(z) = z·z̄ = u + v√2 ∈ Z[√2]`, a non-negative
    /// real number with `N(z) = 0` iff `z = 0`.
    pub fn norm(&self) -> Zroot2 {
        let [a, b, c, d] = [&self.a, &self.b, &self.c, &self.d];
        let u = &(&(a * a) + &(b * b)) + &(&(c * c) + &(d * d));
        // v = ab + bc + cd − ad
        let v = &(&(a * b) + &(b * c)) + &(&(c * d) - &(a * d));
        Zroot2::new(u, v)
    }

    /// The Euclidean function `E(z) = |u² − 2v²|` where `N(z) = u + v√2`
    /// — the absolute field norm of `z` over `Q`.
    pub fn euclidean_value(&self) -> IBig {
        self.norm().field_norm().abs()
    }

    /// Multiplication by `ω` (a cheap coefficient rotation):
    /// `ω·(aω³ + bω² + cω + d) = bω³? …` — concretely
    /// `(a,b,c,d) ↦ (b, c, d, −a)`.
    pub fn mul_omega(&self) -> Zomega {
        Zomega::new(self.b.clone(), self.c.clone(), self.d.clone(), -&self.a)
    }

    /// Multiplication by `√2 = ω − ω³`:
    /// `(a,b,c,d) ↦ (b−d, a+c, b+d, c−a)`.
    pub fn mul_sqrt2(&self) -> Zomega {
        Zomega::new(
            &self.b - &self.d,
            &self.a + &self.c,
            &self.b + &self.d,
            &self.c - &self.a,
        )
    }

    /// Returns `z/√2` if `z` is divisible by `√2`
    /// (iff `a ≡ c` and `b ≡ d (mod 2)`, the minimality criterion of
    /// Algorithm 1 in the paper), else `None`.
    pub fn div_sqrt2(&self) -> Option<Zomega> {
        let parity_ok = (&self.a - &self.c).is_even() && (&self.b - &self.d).is_even();
        if !parity_ok {
            return None;
        }
        Some(Zomega::new(
            (&self.b - &self.d).half_exact(),
            (&self.a + &self.c).half_exact(),
            (&self.b + &self.d).half_exact(),
            (&self.c - &self.a).half_exact(),
        ))
    }

    /// Returns `true` iff `z` is divisible by `√2` in `Z[ω]`.
    pub fn divisible_by_sqrt2(&self) -> bool {
        (&self.a - &self.c).is_even() && (&self.b - &self.d).is_even()
    }

    /// Multiplies every coefficient by the rational integer `s`.
    pub fn mul_scalar(&self, s: &IBig) -> Zomega {
        Zomega::new(&self.a * s, &self.b * s, &self.c * s, &self.d * s)
    }

    /// Divides every coefficient exactly by the rational integer `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero; debug-panics if any coefficient is not
    /// divisible.
    pub fn div_scalar_exact(&self, s: &IBig) -> Zomega {
        Zomega::new(
            self.a.div_exact(s),
            self.b.div_exact(s),
            self.c.div_exact(s),
            self.d.div_exact(s),
        )
    }

    /// Greatest common divisor of the four integer coefficients
    /// (the *content*; zero for the zero element).
    pub fn content(&self) -> IBig {
        self.a.gcd(&self.b).gcd(&self.c.gcd(&self.d))
    }

    /// Multiplies by `√2^m` for `m ≥ 0` (powers of 2 shortcut).
    pub fn mul_sqrt2_pow(&self, m: u64) -> Zomega {
        let shifted = Zomega::new(
            &self.a << (m / 2),
            &self.b << (m / 2),
            &self.c << (m / 2),
            &self.d << (m / 2),
        );
        if m % 2 == 1 {
            shifted.mul_sqrt2()
        } else {
            shifted
        }
    }

    /// Raises to the power `n`.
    pub fn pow(&self, n: u32) -> Zomega {
        let mut acc = Zomega::one();
        let mut base = self.clone();
        let mut e = n;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Euclidean division: returns `(q, r)` with `self = q·rhs + r` and
    /// `E(r) < E(rhs)` (in fact `E(r) ≤ (9/16)·E(rhs)`, see the paper).
    ///
    /// The quotient is obtained by dividing in `Q[ω]` and rounding each
    /// coordinate to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Zomega) -> (Zomega, Zomega) {
        assert!(!rhs.is_zero(), "division by zero in Z[omega]");
        // self/rhs = self·conj(rhs)·σ(N(rhs)) / fieldnorm(rhs), where
        // σ(N) = u − v√2 is the Galois conjugate of N(rhs) = u + v√2.
        // As a Z[ω] element, u − v√2 = u + v(ω³ − ω) = (v, 0, −v, u).
        let n = rhs.norm();
        let denom = n.field_norm(); // u² − 2v², may be negative
        let sigma = Zomega::new(n.v.clone(), IBig::zero(), -&n.v, n.u.clone());
        let num = &(self * &rhs.conj()) * &sigma;
        let q = Zomega::new(
            num.a.div_round_nearest(&denom),
            num.b.div_round_nearest(&denom),
            num.c.div_round_nearest(&denom),
            num.d.div_round_nearest(&denom),
        );
        let r = self - &(&q * rhs);
        if r.euclidean_value() < rhs.euclidean_value() {
            return (q, r);
        }
        // Rounding ties can land on the boundary E(r) = E(rhs); nudge the
        // quotient by one unit per coordinate and take the best neighbour.
        let mut best: Option<(Zomega, Zomega, IBig)> = None;
        for da in -1..=1i64 {
            for db in -1..=1i64 {
                for dc in -1..=1i64 {
                    for dd in -1..=1i64 {
                        let cand = &q + &Zomega::new(da.into(), db.into(), dc.into(), dd.into());
                        let r = self - &(&cand * rhs);
                        let e = r.euclidean_value();
                        if best.as_ref().is_none_or(|(_, _, be)| e < *be) {
                            best = Some((cand, r, e));
                        }
                    }
                }
            }
        }
        // aq-lint: allow(R1): the candidate loop always runs, so best was set at least once
        let (q, r, e) = best.expect("nonempty neighbourhood");
        assert!(
            e < rhs.euclidean_value(),
            "Euclidean division failed to reduce: E(r)={e} ≥ E(rhs)={}",
            rhs.euclidean_value()
        );
        (q, r)
    }

    /// Greatest common divisor by the Euclidean algorithm.
    ///
    /// The result is unique only up to multiplication by units of `Z[ω]`;
    /// callers that need a canonical representative should pass it through
    /// [`crate::assoc::canonical_associate`].
    pub fn gcd(&self, other: &Zomega) -> Zomega {
        let mut x = self.clone();
        let mut y = other.clone();
        while !y.is_zero() {
            let (_, r) = x.div_rem(&y);
            x = y;
            y = r;
        }
        x
    }

    /// Evaluates to a complex double (for reporting / numeric backends).
    pub fn to_complex64(&self) -> crate::Complex64 {
        crate::eval::zomega_to_complex(self, 0, &aq_bigint::UBig::one())
    }
}

impl Add<&Zomega> for &Zomega {
    type Output = Zomega;
    fn add(self, rhs: &Zomega) -> Zomega {
        Zomega::new(
            &self.a + &rhs.a,
            &self.b + &rhs.b,
            &self.c + &rhs.c,
            &self.d + &rhs.d,
        )
    }
}

impl Sub<&Zomega> for &Zomega {
    type Output = Zomega;
    fn sub(self, rhs: &Zomega) -> Zomega {
        Zomega::new(
            &self.a - &rhs.a,
            &self.b - &rhs.b,
            &self.c - &rhs.c,
            &self.d - &rhs.d,
        )
    }
}

impl Mul<&Zomega> for &Zomega {
    type Output = Zomega;
    fn mul(self, rhs: &Zomega) -> Zomega {
        // Convolution of the coefficient polynomials modulo ω⁴ = −1.
        let (a1, b1, c1, d1) = (&self.a, &self.b, &self.c, &self.d);
        let (a2, b2, c2, d2) = (&rhs.a, &rhs.b, &rhs.c, &rhs.d);
        let d = &(d1 * d2) - &(&(&(a1 * c2) + &(c1 * a2)) + &(b1 * b2));
        let c = &(&(c1 * d2) + &(d1 * c2)) - &(&(a1 * b2) + &(b1 * a2));
        let b = &(&(&(b1 * d2) + &(d1 * b2)) + &(c1 * c2)) - &(a1 * a2);
        let a = &(&(a1 * d2) + &(d1 * a2)) + &(&(b1 * c2) + &(c1 * b2));
        Zomega::new(a, b, c, d)
    }
}

impl Neg for &Zomega {
    type Output = Zomega;
    fn neg(self) -> Zomega {
        Zomega::new(-&self.a, -&self.b, -&self.c, -&self.d)
    }
}

impl Neg for Zomega {
    type Output = Zomega;
    fn neg(self) -> Zomega {
        -&self
    }
}

impl fmt::Debug for Zomega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Zomega({self})")
    }
}

impl fmt::Display for Zomega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}w3 + {}w2 + {}w + {}", self.a, self.b, self.c, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn zo(a: i64, b: i64, c: i64, d: i64) -> Zomega {
        Zomega::new(a.into(), b.into(), c.into(), d.into())
    }

    #[test]
    fn omega_powers() {
        let w = Zomega::omega();
        assert_eq!(w.pow(2), Zomega::i());
        assert_eq!(w.pow(4), zo(0, 0, 0, -1));
        assert_eq!(w.pow(8), Zomega::one());
        assert_eq!(&w * &w.pow(7), Zomega::one());
    }

    #[test]
    fn sqrt2_squares_to_two() {
        let s = Zomega::sqrt2();
        assert_eq!(&s * &s, Zomega::from_int(2));
        assert_eq!(s.mul_sqrt2(), Zomega::from_int(2));
    }

    #[test]
    fn mul_omega_is_rotation() {
        let z = zo(1, 2, 3, 4);
        assert_eq!(z.mul_omega(), &z * &Zomega::omega());
    }

    #[test]
    fn conj_is_involution_and_multiplicative() {
        let z = zo(3, -1, 4, 2);
        let w = zo(-2, 5, 0, 7);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((&z * &w).conj(), &z.conj() * &w.conj());
    }

    #[test]
    fn norm_is_z_times_conj() {
        let z = zo(2, -3, 1, 5);
        let n = z.norm();
        // z·z̄ should equal u + v√2 as a Zomega element
        let prod = &z * &z.conj();
        assert_eq!(prod.d, n.u);
        assert_eq!(prod.c, n.v);
        assert_eq!(prod.a, -&n.v);
        assert_eq!(prod.b, IBig::zero());
        assert!(n.is_positive());
    }

    #[test]
    fn norm_multiplicative() {
        let z = zo(1, 2, -2, 3);
        let w = zo(0, -1, 4, 1);
        let lhs = (&z * &w).norm();
        let rhs = &z.norm() * &w.norm();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn euclidean_value_of_paper_units() {
        // λ = 1 + √2 has |field norm| 1; ω ± 1 have field norm 2
        let lambda = &Zomega::one() + &Zomega::sqrt2();
        assert_eq!(lambda.euclidean_value(), IBig::one());
        let wp1 = &Zomega::omega() + &Zomega::one();
        assert_eq!(wp1.euclidean_value(), IBig::from(2));
    }

    #[test]
    fn sqrt2_divisibility() {
        assert!(Zomega::from_int(2).divisible_by_sqrt2());
        assert_eq!(
            Zomega::from_int(2).div_sqrt2().expect("2/√2 = √2"),
            Zomega::sqrt2()
        );
        assert!(!Zomega::one().divisible_by_sqrt2());
        assert!(!Zomega::omega().divisible_by_sqrt2());
        // (1+ω) is not divisible; (1+i) = √2·ω is:
        let one_plus_i = &Zomega::one() + &Zomega::i();
        assert_eq!(one_plus_i.div_sqrt2().expect("divisible"), Zomega::omega());
    }

    #[test]
    fn div_rem_invariant() {
        let cases = [
            (zo(5, 3, -2, 7), zo(1, 0, 1, 1)),
            (zo(100, -50, 25, 13), zo(3, 1, -1, 2)),
            (zo(0, 0, 0, 17), zo(0, 0, 0, 5)),
            (zo(1, 1, 1, 1), zo(2, -1, 3, 4)),
        ];
        for (x, y) in cases {
            let (q, r) = x.div_rem(&y);
            assert_eq!(&(&q * &y) + &r, x);
            assert!(r.euclidean_value() < y.euclidean_value());
        }
    }

    #[test]
    fn gcd_divides_both() {
        let g = zo(1, 0, 1, 2);
        let x = &g * &zo(3, -1, 0, 2);
        let y = &g * &zo(0, 2, 1, -1);
        let got = x.gcd(&y);
        // got must divide x and y with zero remainder
        let (_, r1) = x.div_rem(&got);
        let (_, r2) = y.div_rem(&got);
        assert!(r1.is_zero() && r2.is_zero());
        // and g must divide got
        let (_, r3) = got.div_rem(&g);
        assert!(r3.is_zero());
    }

    #[test]
    fn gcd_of_coprime_is_unit() {
        let x = zo(0, 0, 0, 3);
        let y = zo(0, 0, 0, 5);
        let g = x.gcd(&y);
        assert_eq!(g.euclidean_value(), IBig::one());
    }
}
