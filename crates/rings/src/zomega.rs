//! The ring of cyclotomic integers `Z[ω]`, `ω = e^{iπ/4}`.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use aq_bigint::IBig;

use crate::Zroot2;

/// Internal representation of the four coefficients.
///
/// # Canonical representation
///
/// Every value has exactly **one** representation: `Small` whenever all four
/// coefficients fit `i64`, `Big` otherwise. Every constructor enforces this
/// (promotion on checked-overflow, demotion after wide arithmetic), so the
/// derived `PartialEq`/`Hash` are structural *and* value-consistent — the
/// same contract as the inline ≤2-limb `UBig` representation this mirrors.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// All four coefficients fit `i64` — the overwhelmingly common case for
    /// circuit weights, handled with native `i64`/`i128` arithmetic.
    Small([i64; 4]),
    /// At least one coefficient exceeds the `i64` range (canonical: never
    /// constructed otherwise). Boxed to keep `Zomega` one word plus a tag.
    Big(Box<[IBig; 4]>),
}

/// A cyclotomic integer `a·ω³ + b·ω² + c·ω + d` with `ω = e^{iπ/4}`.
///
/// `ω` is a primitive 8-th root of unity, so `ω⁴ = −1`, `ω² = i` and
/// `√2 = ω − ω³`. The coefficient order `(a, b, c, d)` follows the paper.
///
/// `Z[ω]` is a **Euclidean ring** (Sec. IV-B of the paper): division with
/// remainder ([`Zomega::div_rem`]) and greatest common divisors
/// ([`Zomega::gcd`]) exist, which is what makes the GCD normalization
/// scheme of algebraic QMDDs possible.
///
/// Coefficients are stored inline as `i64` while they fit (with
/// checked-overflow promotion to arbitrary precision), so the common
/// small-coefficient case never touches heap bigints.
///
/// # Examples
///
/// ```
/// use aq_rings::Zomega;
///
/// let omega = Zomega::omega();
/// assert_eq!(omega.pow(8), Zomega::one());
/// assert_eq!(omega.pow(4), -&Zomega::one());
/// // √2 = ω − ω³
/// let sqrt2 = &omega - &omega.pow(3);
/// assert_eq!(&sqrt2 * &sqrt2, Zomega::from_int(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Zomega {
    repr: Repr,
}

/// `gcd` on unsigned magnitudes (Euclid; `gcd(x, 0) = x`).
fn gcd_u64(mut x: u64, mut y: u64) -> u64 {
    while y != 0 {
        let r = x % y;
        x = y;
        y = r;
    }
    x
}

impl Zomega {
    /// Creates `a·ω³ + b·ω² + c·ω + d`.
    pub fn new(a: IBig, b: IBig, c: IBig, d: IBig) -> Self {
        Self::canonical([a, b, c, d])
    }

    /// Builds the canonical representation from big coefficients, demoting
    /// to the inline form when all four fit `i64`.
    fn canonical(coords: [IBig; 4]) -> Self {
        if let (Some(a), Some(b), Some(c), Some(d)) = (
            coords[0].to_i64(),
            coords[1].to_i64(),
            coords[2].to_i64(),
            coords[3].to_i64(),
        ) {
            Zomega::from_small([a, b, c, d])
        } else {
            Zomega {
                repr: Repr::Big(Box::new(coords)),
            }
        }
    }

    /// Builds directly from inline coefficients (always canonical).
    fn from_small(s: [i64; 4]) -> Self {
        Zomega {
            repr: Repr::Small(s),
        }
    }

    /// Builds from `i128` intermediates, demoting when all fit `i64`.
    fn from_i128s(v: [i128; 4]) -> Self {
        match (
            i64::try_from(v[0]),
            i64::try_from(v[1]),
            i64::try_from(v[2]),
            i64::try_from(v[3]),
        ) {
            (Ok(a), Ok(b), Ok(c), Ok(d)) => Zomega::from_small([a, b, c, d]),
            _ => Zomega {
                repr: Repr::Big(Box::new([
                    IBig::from(v[0]),
                    IBig::from(v[1]),
                    IBig::from(v[2]),
                    IBig::from(v[3]),
                ])),
            },
        }
    }

    /// The value `0`.
    pub fn zero() -> Self {
        Zomega::from_small([0, 0, 0, 0])
    }

    /// The value `1`.
    pub fn one() -> Self {
        Zomega::from_small([0, 0, 0, 1])
    }

    /// The rational integer `n`.
    pub fn from_int(n: i64) -> Self {
        Zomega::from_small([0, 0, 0, n])
    }

    /// The generator `ω = e^{iπ/4}`.
    pub fn omega() -> Self {
        Zomega::from_small([0, 0, 1, 0])
    }

    /// The imaginary unit `i = ω²`.
    pub fn i() -> Self {
        Zomega::from_small([0, 1, 0, 0])
    }

    /// `√2 = ω − ω³`.
    pub fn sqrt2() -> Self {
        Zomega::from_small([-1, 0, 1, 0])
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        // Zero fits i64, so (canonically) it is always inline.
        matches!(&self.repr, Repr::Small([0, 0, 0, 0]))
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        matches!(&self.repr, Repr::Small([0, 0, 0, 1]))
    }

    /// Coefficients as an owned array `[a, b, c, d]`.
    pub fn coeffs(&self) -> [IBig; 4] {
        match &self.repr {
            Repr::Small([a, b, c, d]) => [
                IBig::from(*a),
                IBig::from(*b),
                IBig::from(*c),
                IBig::from(*d),
            ],
            Repr::Big(bx) => (**bx).clone(),
        }
    }

    /// Inline coefficients, if the value is in the small representation.
    pub fn coeffs_i64(&self) -> Option<[i64; 4]> {
        match &self.repr {
            Repr::Small(s) => Some(*s),
            Repr::Big(_) => None,
        }
    }

    /// Returns `true` if the value is stored inline (all coefficients fit
    /// `i64`).
    pub fn is_inline(&self) -> bool {
        matches!(&self.repr, Repr::Small(_))
    }

    /// Checks the canonical-representation invariant: inline values are
    /// canonical by construction; a promoted value must have at least one
    /// coefficient that genuinely exceeds the `i64` range.
    pub fn repr_is_canonical(&self) -> bool {
        match &self.repr {
            Repr::Small(_) => true,
            Repr::Big(bx) => bx.iter().any(|x| x.to_i64().is_none()),
        }
    }

    /// Complex conjugate: `ω ↦ ω⁻¹ = −ω³`, giving
    /// `conj(aω³ + bω² + cω + d) = −cω³ − bω² − aω + d`.
    pub fn conj(&self) -> Zomega {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            if let (Some(na), Some(nb), Some(nc)) =
                (c.checked_neg(), b.checked_neg(), a.checked_neg())
            {
                return Zomega::from_small([na, nb, nc, *d]);
            }
        }
        let [a, b, c, d] = self.coeffs();
        Zomega::canonical([-&c, -&b, -&a, d])
    }

    /// The squared norm `N(z) = z·z̄ = u + v√2 ∈ Z[√2]`, a non-negative
    /// real number with `N(z) = 0` iff `z = 0`.
    pub fn norm(&self) -> Zroot2 {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            let (a, b, c, d) = (*a as i128, *b as i128, *c as i128, *d as i128);
            let u = (a * a)
                .checked_add(b * b)
                .and_then(|x| x.checked_add(c * c))
                .and_then(|x| x.checked_add(d * d));
            let v = (a * b)
                .checked_add(b * c)
                .and_then(|x| x.checked_add(c * d))
                .and_then(|x| x.checked_sub(a * d));
            if let (Some(u), Some(v)) = (u, v) {
                return Zroot2::new(IBig::from(u), IBig::from(v));
            }
        }
        let [a, b, c, d] = self.coeffs();
        let u = &(&(&a * &a) + &(&b * &b)) + &(&(&c * &c) + &(&d * &d));
        // v = ab + bc + cd − ad
        let v = &(&(&a * &b) + &(&b * &c)) + &(&(&c * &d) - &(&a * &d));
        Zroot2::new(u, v)
    }

    /// The Euclidean function `E(z) = |u² − 2v²|` where `N(z) = u + v√2`
    /// — the absolute field norm of `z` over `Q`.
    pub fn euclidean_value(&self) -> IBig {
        self.norm().field_norm().abs()
    }

    /// Multiplication by `ω` (a cheap coefficient rotation):
    /// `(a,b,c,d) ↦ (b, c, d, −a)`.
    pub fn mul_omega(&self) -> Zomega {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            if let Some(na) = a.checked_neg() {
                return Zomega::from_small([*b, *c, *d, na]);
            }
        }
        let [a, b, c, d] = self.coeffs();
        Zomega::canonical([b, c, d, -&a])
    }

    /// Multiplication by `√2 = ω − ω³`:
    /// `(a,b,c,d) ↦ (b−d, a+c, b+d, c−a)`.
    pub fn mul_sqrt2(&self) -> Zomega {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            let (a, b, c, d) = (*a as i128, *b as i128, *c as i128, *d as i128);
            return Zomega::from_i128s([b - d, a + c, b + d, c - a]);
        }
        let [a, b, c, d] = self.coeffs();
        Zomega::canonical([&b - &d, &a + &c, &b + &d, &c - &a])
    }

    /// Returns `z/√2` if `z` is divisible by `√2`
    /// (iff `a ≡ c` and `b ≡ d (mod 2)`, the minimality criterion of
    /// Algorithm 1 in the paper), else `None`.
    pub fn div_sqrt2(&self) -> Option<Zomega> {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            if (a ^ c) & 1 != 0 || (b ^ d) & 1 != 0 {
                return None;
            }
            let (a, b, c, d) = (*a as i128, *b as i128, *c as i128, *d as i128);
            return Some(Zomega::from_i128s([
                (b - d) / 2,
                (a + c) / 2,
                (b + d) / 2,
                (c - a) / 2,
            ]));
        }
        let [a, b, c, d] = self.coeffs();
        let parity_ok = (&a - &c).is_even() && (&b - &d).is_even();
        if !parity_ok {
            return None;
        }
        Some(Zomega::canonical([
            (&b - &d).half_exact(),
            (&a + &c).half_exact(),
            (&b + &d).half_exact(),
            (&c - &a).half_exact(),
        ]))
    }

    /// Returns `true` iff `z` is divisible by `√2` in `Z[ω]`.
    pub fn divisible_by_sqrt2(&self) -> bool {
        match &self.repr {
            Repr::Small([a, b, c, d]) => (a ^ c) & 1 == 0 && (b ^ d) & 1 == 0,
            Repr::Big(bx) => {
                let [a, b, c, d] = &**bx;
                (a - c).is_even() && (b - d).is_even()
            }
        }
    }

    /// Multiplies every coefficient by the rational integer `s`.
    pub fn mul_scalar(&self, s: &IBig) -> Zomega {
        if let (Repr::Small([a, b, c, d]), Some(s)) = (&self.repr, s.to_i64()) {
            let s = s as i128;
            return Zomega::from_i128s([
                *a as i128 * s,
                *b as i128 * s,
                *c as i128 * s,
                *d as i128 * s,
            ]);
        }
        let [a, b, c, d] = self.coeffs();
        Zomega::canonical([&a * s, &b * s, &c * s, &d * s])
    }

    /// Divides every coefficient exactly by the rational integer `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero; debug-panics if any coefficient is not
    /// divisible.
    pub fn div_scalar_exact(&self, s: &IBig) -> Zomega {
        if let (Repr::Small([a, b, c, d]), Some(s)) = (&self.repr, s.to_i64()) {
            // checked_div also rejects i64::MIN / −1, which must promote.
            if let (Some(a), Some(b), Some(c), Some(d)) = (
                a.checked_div(s),
                b.checked_div(s),
                c.checked_div(s),
                d.checked_div(s),
            ) {
                return Zomega::from_small([a, b, c, d]);
            }
        }
        let [a, b, c, d] = self.coeffs();
        Zomega::canonical([
            a.div_exact(s),
            b.div_exact(s),
            c.div_exact(s),
            d.div_exact(s),
        ])
    }

    /// Greatest common divisor of the four integer coefficients
    /// (the *content*; zero for the zero element).
    pub fn content(&self) -> IBig {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            let g = gcd_u64(
                gcd_u64(a.unsigned_abs(), b.unsigned_abs()),
                gcd_u64(c.unsigned_abs(), d.unsigned_abs()),
            );
            return IBig::from(g);
        }
        let [a, b, c, d] = self.coeffs();
        a.gcd(&b).gcd(&c.gcd(&d))
    }

    /// Multiplies by `√2^m` for `m ≥ 0` (powers of 2 shortcut).
    pub fn mul_sqrt2_pow(&self, m: u64) -> Zomega {
        let half = m / 2;
        if let Repr::Small([a, b, c, d]) = &self.repr {
            if half < 64 {
                let f = 1i128 << half;
                let shifted = Zomega::from_i128s([
                    *a as i128 * f,
                    *b as i128 * f,
                    *c as i128 * f,
                    *d as i128 * f,
                ]);
                return if m % 2 == 1 {
                    shifted.mul_sqrt2()
                } else {
                    shifted
                };
            }
        }
        let [a, b, c, d] = self.coeffs();
        let shifted = Zomega::canonical([&a << half, &b << half, &c << half, &d << half]);
        if m % 2 == 1 {
            shifted.mul_sqrt2()
        } else {
            shifted
        }
    }

    /// Raises to the power `n`.
    pub fn pow(&self, n: u32) -> Zomega {
        let mut acc = Zomega::one();
        let mut base = self.clone();
        let mut e = n;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Euclidean division: returns `(q, r)` with `self = q·rhs + r` and
    /// `E(r) < E(rhs)` (in fact `E(r) ≤ (9/16)·E(rhs)`, see the paper).
    ///
    /// The quotient is obtained by dividing in `Q[ω]` and rounding each
    /// coordinate to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Zomega) -> (Zomega, Zomega) {
        assert!(!rhs.is_zero(), "division by zero in Z[omega]");
        // self/rhs = self·conj(rhs)·σ(N(rhs)) / fieldnorm(rhs), where
        // σ(N) = u − v√2 is the Galois conjugate of N(rhs) = u + v√2.
        // As a Z[ω] element, u − v√2 = u + v(ω³ − ω) = (v, 0, −v, u).
        let n = rhs.norm();
        let denom = n.field_norm(); // u² − 2v², may be negative
        let sigma = Zomega::new(n.v.clone(), IBig::zero(), -&n.v, n.u.clone());
        let num = &(self * &rhs.conj()) * &sigma;
        let [na, nb, nc, nd] = num.coeffs();
        let q = Zomega::canonical([
            na.div_round_nearest(&denom),
            nb.div_round_nearest(&denom),
            nc.div_round_nearest(&denom),
            nd.div_round_nearest(&denom),
        ]);
        let r = self - &(&q * rhs);
        if r.euclidean_value() < rhs.euclidean_value() {
            return (q, r);
        }
        // Rounding ties can land on the boundary E(r) = E(rhs); nudge the
        // quotient by one unit per coordinate and take the best neighbour.
        let mut best: Option<(Zomega, Zomega, IBig)> = None;
        for da in -1..=1i64 {
            for db in -1..=1i64 {
                for dc in -1..=1i64 {
                    for dd in -1..=1i64 {
                        let cand = &q + &Zomega::new(da.into(), db.into(), dc.into(), dd.into());
                        let r = self - &(&cand * rhs);
                        let e = r.euclidean_value();
                        if best.as_ref().is_none_or(|(_, _, be)| e < *be) {
                            best = Some((cand, r, e));
                        }
                    }
                }
            }
        }
        // aq-lint: allow(R1): the candidate loop always runs, so best was set at least once
        let (q, r, e) = best.expect("nonempty neighbourhood");
        assert!(
            e < rhs.euclidean_value(),
            "Euclidean division failed to reduce: E(r)={e} ≥ E(rhs)={}",
            rhs.euclidean_value()
        );
        (q, r)
    }

    /// Greatest common divisor by the Euclidean algorithm.
    ///
    /// The result is unique only up to multiplication by units of `Z[ω]`;
    /// callers that need a canonical representative should pass it through
    /// [`crate::assoc::canonical_associate`].
    pub fn gcd(&self, other: &Zomega) -> Zomega {
        let mut x = self.clone();
        let mut y = other.clone();
        while !y.is_zero() {
            let (_, r) = x.div_rem(&y);
            x = y;
            y = r;
        }
        x
    }

    /// Evaluates to a complex double (for reporting / numeric backends).
    pub fn to_complex64(&self) -> crate::Complex64 {
        crate::eval::zomega_to_complex(self, 0, &aq_bigint::UBig::one())
    }
}

impl Add<&Zomega> for &Zomega {
    type Output = Zomega;
    fn add(self, rhs: &Zomega) -> Zomega {
        if let (Repr::Small([a1, b1, c1, d1]), Repr::Small([a2, b2, c2, d2])) =
            (&self.repr, &rhs.repr)
        {
            if let (Some(a), Some(b), Some(c), Some(d)) = (
                a1.checked_add(*a2),
                b1.checked_add(*b2),
                c1.checked_add(*c2),
                d1.checked_add(*d2),
            ) {
                return Zomega::from_small([a, b, c, d]);
            }
        }
        let [a1, b1, c1, d1] = self.coeffs();
        let [a2, b2, c2, d2] = rhs.coeffs();
        Zomega::canonical([&a1 + &a2, &b1 + &b2, &c1 + &c2, &d1 + &d2])
    }
}

impl Sub<&Zomega> for &Zomega {
    type Output = Zomega;
    fn sub(self, rhs: &Zomega) -> Zomega {
        if let (Repr::Small([a1, b1, c1, d1]), Repr::Small([a2, b2, c2, d2])) =
            (&self.repr, &rhs.repr)
        {
            if let (Some(a), Some(b), Some(c), Some(d)) = (
                a1.checked_sub(*a2),
                b1.checked_sub(*b2),
                c1.checked_sub(*c2),
                d1.checked_sub(*d2),
            ) {
                return Zomega::from_small([a, b, c, d]);
            }
        }
        let [a1, b1, c1, d1] = self.coeffs();
        let [a2, b2, c2, d2] = rhs.coeffs();
        Zomega::canonical([&a1 - &a2, &b1 - &b2, &c1 - &c2, &d1 - &d2])
    }
}

/// Inline multiply: `i64` coefficients widen to `i128` (single products
/// cannot overflow), with checked accumulation promoting on overflow.
fn mul_small(x: &[i64; 4], y: &[i64; 4]) -> Option<Zomega> {
    let [a1, b1, c1, d1] = x.map(|v| v as i128);
    let [a2, b2, c2, d2] = y.map(|v| v as i128);
    let d = (d1 * d2).checked_sub((a1 * c2).checked_add(c1 * a2)?.checked_add(b1 * b2)?)?;
    let c = (c1 * d2)
        .checked_add(d1 * c2)?
        .checked_sub((a1 * b2).checked_add(b1 * a2)?)?;
    let b = (b1 * d2)
        .checked_add(d1 * b2)?
        .checked_add(c1 * c2)?
        .checked_sub(a1 * a2)?;
    let a = (a1 * d2)
        .checked_add(d1 * a2)?
        .checked_add((b1 * c2).checked_add(c1 * b2)?)?;
    Some(Zomega::from_i128s([a, b, c, d]))
}

impl Mul<&Zomega> for &Zomega {
    type Output = Zomega;
    fn mul(self, rhs: &Zomega) -> Zomega {
        if let (Repr::Small(x), Repr::Small(y)) = (&self.repr, &rhs.repr) {
            if let Some(r) = mul_small(x, y) {
                return r;
            }
        }
        // Convolution of the coefficient polynomials modulo ω⁴ = −1.
        let [a1, b1, c1, d1] = &self.coeffs();
        let [a2, b2, c2, d2] = &rhs.coeffs();
        let d = &(d1 * d2) - &(&(&(a1 * c2) + &(c1 * a2)) + &(b1 * b2));
        let c = &(&(c1 * d2) + &(d1 * c2)) - &(&(a1 * b2) + &(b1 * a2));
        let b = &(&(&(b1 * d2) + &(d1 * b2)) + &(c1 * c2)) - &(a1 * a2);
        let a = &(&(a1 * d2) + &(d1 * a2)) + &(&(b1 * c2) + &(c1 * b2));
        Zomega::canonical([a, b, c, d])
    }
}

impl Neg for &Zomega {
    type Output = Zomega;
    fn neg(self) -> Zomega {
        if let Repr::Small([a, b, c, d]) = &self.repr {
            if let (Some(a), Some(b), Some(c), Some(d)) = (
                a.checked_neg(),
                b.checked_neg(),
                c.checked_neg(),
                d.checked_neg(),
            ) {
                return Zomega::from_small([a, b, c, d]);
            }
        }
        let [a, b, c, d] = self.coeffs();
        Zomega::canonical([-&a, -&b, -&c, -&d])
    }
}

impl Neg for Zomega {
    type Output = Zomega;
    fn neg(self) -> Zomega {
        -&self
    }
}

impl fmt::Debug for Zomega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Zomega({self})")
    }
}

impl fmt::Display for Zomega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.coeffs();
        write!(f, "{a}w3 + {b}w2 + {c}w + {d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn zo(a: i64, b: i64, c: i64, d: i64) -> Zomega {
        Zomega::new(a.into(), b.into(), c.into(), d.into())
    }

    #[test]
    fn omega_powers() {
        let w = Zomega::omega();
        assert_eq!(w.pow(2), Zomega::i());
        assert_eq!(w.pow(4), zo(0, 0, 0, -1));
        assert_eq!(w.pow(8), Zomega::one());
        assert_eq!(&w * &w.pow(7), Zomega::one());
    }

    #[test]
    fn sqrt2_squares_to_two() {
        let s = Zomega::sqrt2();
        assert_eq!(&s * &s, Zomega::from_int(2));
        assert_eq!(s.mul_sqrt2(), Zomega::from_int(2));
    }

    #[test]
    fn mul_omega_is_rotation() {
        let z = zo(1, 2, 3, 4);
        assert_eq!(z.mul_omega(), &z * &Zomega::omega());
    }

    #[test]
    fn conj_is_involution_and_multiplicative() {
        let z = zo(3, -1, 4, 2);
        let w = zo(-2, 5, 0, 7);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((&z * &w).conj(), &z.conj() * &w.conj());
    }

    #[test]
    fn norm_is_z_times_conj() {
        let z = zo(2, -3, 1, 5);
        let n = z.norm();
        // z·z̄ should equal u + v√2 as a Zomega element
        let prod = &z * &z.conj();
        let [pa, pb, pc, pd] = prod.coeffs();
        assert_eq!(pd, n.u);
        assert_eq!(pc, n.v);
        assert_eq!(pa, -&n.v);
        assert_eq!(pb, IBig::zero());
        assert!(n.is_positive());
    }

    #[test]
    fn norm_multiplicative() {
        let z = zo(1, 2, -2, 3);
        let w = zo(0, -1, 4, 1);
        let lhs = (&z * &w).norm();
        let rhs = &z.norm() * &w.norm();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn euclidean_value_of_paper_units() {
        // λ = 1 + √2 has |field norm| 1; ω ± 1 have field norm 2
        let lambda = &Zomega::one() + &Zomega::sqrt2();
        assert_eq!(lambda.euclidean_value(), IBig::one());
        let wp1 = &Zomega::omega() + &Zomega::one();
        assert_eq!(wp1.euclidean_value(), IBig::from(2));
    }

    #[test]
    fn sqrt2_divisibility() {
        assert!(Zomega::from_int(2).divisible_by_sqrt2());
        assert_eq!(
            Zomega::from_int(2).div_sqrt2().expect("2/√2 = √2"),
            Zomega::sqrt2()
        );
        assert!(!Zomega::one().divisible_by_sqrt2());
        assert!(!Zomega::omega().divisible_by_sqrt2());
        // (1+ω) is not divisible; (1+i) = √2·ω is:
        let one_plus_i = &Zomega::one() + &Zomega::i();
        assert_eq!(one_plus_i.div_sqrt2().expect("divisible"), Zomega::omega());
    }

    #[test]
    fn div_rem_invariant() {
        let cases = [
            (zo(5, 3, -2, 7), zo(1, 0, 1, 1)),
            (zo(100, -50, 25, 13), zo(3, 1, -1, 2)),
            (zo(0, 0, 0, 17), zo(0, 0, 0, 5)),
            (zo(1, 1, 1, 1), zo(2, -1, 3, 4)),
        ];
        for (x, y) in cases {
            let (q, r) = x.div_rem(&y);
            assert_eq!(&(&q * &y) + &r, x);
            assert!(r.euclidean_value() < y.euclidean_value());
        }
    }

    #[test]
    fn gcd_divides_both() {
        let g = zo(1, 0, 1, 2);
        let x = &g * &zo(3, -1, 0, 2);
        let y = &g * &zo(0, 2, 1, -1);
        let got = x.gcd(&y);
        // got must divide x and y with zero remainder
        let (_, r1) = x.div_rem(&got);
        let (_, r2) = y.div_rem(&got);
        assert!(r1.is_zero() && r2.is_zero());
        // and g must divide got
        let (_, r3) = got.div_rem(&g);
        assert!(r3.is_zero());
    }

    #[test]
    fn gcd_of_coprime_is_unit() {
        let x = zo(0, 0, 0, 3);
        let y = zo(0, 0, 0, 5);
        let g = x.gcd(&y);
        assert_eq!(g.euclidean_value(), IBig::one());
    }

    #[test]
    fn small_values_stay_inline() {
        assert!(zo(1, -2, 3, -4).is_inline());
        assert!(Zomega::zero().is_inline());
        assert!(zo(i64::MAX, i64::MIN, 0, 1).is_inline());
        let prod = &zo(1 << 20, 0, 0, 3) * &zo(0, 5, -7, 1 << 19);
        assert!(prod.is_inline() && prod.repr_is_canonical());
    }

    #[test]
    fn overflow_promotes_and_cancellation_demotes() {
        let big = zo(i64::MAX, 0, 0, 1);
        let sum = &big + &zo(1, 0, 0, 0); // a overflows i64
        assert!(!sum.is_inline());
        assert!(sum.repr_is_canonical());
        // subtracting back demotes to the inline form and compares equal
        let back = &sum - &zo(1, 0, 0, 0);
        assert!(back.is_inline());
        assert_eq!(back, big);
        // negating i64::MIN promotes
        let neg = -&zo(i64::MIN, 0, 0, 0);
        assert!(!neg.is_inline() && neg.repr_is_canonical());
    }

    #[test]
    fn promoted_arithmetic_matches_inline_results() {
        // (x·2^40)·(y·2^40) == (x·y)·2^80 computed through the big path
        let x = zo(3, -1, 4, 2);
        let y = zo(-2, 5, 0, 7);
        let shift = &IBig::from(1) << 40;
        let xs = x.mul_scalar(&shift);
        let ys = y.mul_scalar(&shift);
        let prod_big = &xs * &ys; // exceeds i64 → Big path
        assert!(!prod_big.is_inline());
        let expected = (&x * &y).mul_scalar(&(&IBig::from(1) << 80));
        assert_eq!(prod_big, expected);
    }

    #[test]
    fn mixed_repr_ops_are_exact() {
        let small = zo(1, 2, 3, 4);
        let big = small.mul_scalar(&(&IBig::from(1) << 70));
        let sum = &big + &small;
        assert!(!sum.is_inline() && sum.repr_is_canonical());
        assert_eq!(&sum - &big, small);
        // divisibility and div_sqrt2 agree across representations
        let even_big = zo(2, 0, 2, 0).mul_scalar(&(&IBig::from(1) << 70));
        assert!(even_big.divisible_by_sqrt2());
        let halved = even_big.div_sqrt2().expect("divisible");
        assert_eq!(halved.mul_sqrt2(), even_big);
    }
}
