//! Arbitrary-precision fixed-point evaluation of algebraic numbers.
//!
//! Converting `(a·ω³ + b·ω² + c·ω + d) / (√2^k · e)` to floating point
//! naively suffers catastrophic cancellation: `d` and `(c−a)/√2` can be
//! astronomically large while their sum is a state amplitude `≤ 1`. The
//! accuracy evaluation of the paper (footnote 8) needs the *exact* value to
//! ~`1e−16`, so we evaluate in integer fixed point with enough guard bits
//! and convert at the very end.

use aq_bigint::{IBig, UBig};

use crate::{Complex64, Zomega};

/// Evaluates `num / (√2^k · denom)` to a [`Complex64`].
///
/// Exact up to the final double rounding: all intermediate arithmetic is
/// arbitrary-precision fixed point with a precision that scales with the
/// coefficient bit widths.
pub(crate) fn zomega_to_complex(num: &Zomega, k: i64, denom: &UBig) -> Complex64 {
    if num.is_zero() {
        return Complex64::ZERO;
    }
    // Guard bits: the value can be as small as ~2^-(2·coefbits) relative to
    // the leading terms (near-total cancellation), and the denominator
    // removes another |k|/2 + bits(e) bits.
    let coef_bits = num.coeffs().iter().map(|x| x.bit_len()).max().unwrap_or(0);
    let p = 2 * coef_bits + denom.bit_len() + k.unsigned_abs() / 2 + 128;

    let sqrt2_fp = IBig::from((UBig::from(2u64) << (2 * p)).isqrt()); // ≈ √2·2^p

    // re·2^(p+1) = d·2^(p+1) + (c−a)·√2·2^p ; im analogously with (c+a), b.
    let [a, b, c, d] = num.coeffs();
    let re = &(&d << (p + 1)) + &(&(&c - &a) * &sqrt2_fp);
    let im = &(&b << (p + 1)) + &(&(&c + &a) * &sqrt2_fp);
    let mut shift: i64 = p as i64 + 1;

    let divide = |x: IBig, shift: &mut i64| -> IBig {
        let mut x = x;
        // √2^k = 2^(k/2) · √2^(k mod 2); powers of two fold into `shift`.
        if k >= 0 {
            *shift += k / 2;
            if k % 2 == 1 {
                // x / √2 = x·√2 / 2
                x = &x * &sqrt2_fp;
                *shift += p as i64 + 1;
            }
        } else {
            let m = -k;
            *shift -= m / 2;
            if m % 2 == 1 {
                x = &x * &sqrt2_fp;
                *shift += p as i64;
            }
        }
        if !denom.is_one() {
            x = x.div_round_nearest(&IBig::from(denom.clone()));
        }
        x
    };

    let mut shift_re = shift;
    let re = divide(re, &mut shift_re);
    let im = divide(im, &mut shift);

    Complex64::new(ldexp_big(&re, -shift_re), ldexp_big(&im, -shift))
}

/// `x · 2^e` for big `x`, saturating to `±INFINITY` / flushing to zero at
/// the extremes of the double range.
fn ldexp_big(x: &IBig, e: i64) -> f64 {
    let (m, x_exp) = x.to_f64_exp();
    // aq-lint: allow(R5): to_f64_exp returns an exactly-zero mantissa iff x = 0
    if m == 0.0 {
        return 0.0;
    }
    let total = x_exp + e;
    if total > 1024 {
        return if m < 0.0 {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
    }
    if total < -1070 {
        return 0.0;
    }
    // m ∈ [0.5, 1): multiply in two steps to dodge intermediate overflow.
    let half = total / 2;
    m * 2f64.powi(half as i32) * 2f64.powi((total - half) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domega, Qomega};

    fn assert_close(c: Complex64, re: f64, im: f64) {
        assert!((c.re - re).abs() < 1e-12, "re: {} vs {re}", c.re);
        assert!((c.im - im).abs() < 1e-12, "im: {} vs {im}", c.im);
    }

    #[test]
    fn basic_constants() {
        assert_close(Domega::one().to_complex64(), 1.0, 0.0);
        assert_close(Domega::i().to_complex64(), 0.0, 1.0);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert_close(Domega::omega().to_complex64(), s, s);
        assert_close(
            Domega::sqrt2().to_complex64(),
            std::f64::consts::SQRT_2,
            0.0,
        );
        assert_close(Domega::one_over_sqrt2().to_complex64(), s, 0.0);
    }

    #[test]
    fn rationals() {
        assert_close(
            Qomega::from_int_ratio(-3, 7).to_complex64(),
            -3.0 / 7.0,
            0.0,
        );
        assert_close(
            Qomega::from_int_ratio(1, 1024).to_complex64(),
            1.0 / 1024.0,
            0.0,
        );
    }

    #[test]
    fn cancellation_resistant() {
        // (ω + ω⁻¹)·huge − huge·√2 == 0 exactly; build a number whose value
        // is tiny compared to its coefficients: x = (2^200 + 1)/√2^400 − small…
        // Simpler: (√2)^2·2^199 − 2^200 = 0; evaluate y = big − big + 3/8.
        let big = Domega::new(Zomega::from_int(1), -400); // √2^400 = 2^200
        let explicit = Domega::new(Zomega::from_int(1).mul_scalar(&(&IBig::from(1) << 200)), 0);
        let diff = &(&big - &explicit) + &Qomega::from_int_ratio(3, 8).to_domega().expect("dyadic");
        assert_close(diff.to_complex64(), 0.375, 0.0);
    }

    #[test]
    fn tiny_values_do_not_flush() {
        // 1/√2^600 ≈ 2^-300: far below 1 but well inside f64 range.
        let tiny = Domega::one().div_sqrt2_pow(600);
        let c = tiny.to_complex64();
        assert!((c.re - 2f64.powi(-300)).abs() < 2f64.powi(-300) * 1e-12);
    }

    #[test]
    fn saturation_at_f64_range() {
        let huge = Domega::new(Zomega::from_int(1), -4200); // 2^2100
        assert_eq!(huge.to_complex64().re, f64::INFINITY);
        let tiny = Domega::one().div_sqrt2_pow(4200);
        assert_eq!(tiny.to_complex64().re, 0.0);
    }

    #[test]
    fn omega_powers_lie_on_unit_circle() {
        let mut w = Domega::one();
        for j in 0..8 {
            let c = w.to_complex64();
            let angle = std::f64::consts::FRAC_PI_4 * j as f64;
            assert_close(c, angle.cos(), angle.sin());
            w = &w * &Domega::omega();
        }
    }
}
