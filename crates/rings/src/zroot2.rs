//! The real quadratic ring `Z[√2]`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use aq_bigint::IBig;

/// An element `u + v·√2` of the real quadratic ring `Z[√2]`.
///
/// Norms of [`crate::Zomega`] elements live here (`N(z) = z·z̄ = u + v√2`),
/// and the canonical-associate selection of the GCD normalization scheme
/// compares such norms **exactly** — floating point would defeat the whole
/// point of the algebraic representation.
///
/// # Examples
///
/// ```
/// use aq_rings::Zroot2;
///
/// let phi = Zroot2::new(1.into(), 1.into());   // 1 + √2
/// assert_eq!(phi.field_norm(), (-1).into());    // a fundamental unit
/// assert!(phi.is_positive());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Zroot2 {
    /// Rational part.
    pub u: IBig,
    /// Coefficient of √2.
    pub v: IBig,
}

impl Zroot2 {
    /// Creates `u + v·√2`.
    pub fn new(u: IBig, v: IBig) -> Self {
        Zroot2 { u, v }
    }

    /// The value `0`.
    pub fn zero() -> Self {
        Zroot2::new(IBig::zero(), IBig::zero())
    }

    /// The value `1`.
    pub fn one() -> Self {
        Zroot2::new(IBig::one(), IBig::zero())
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.u.is_zero() && self.v.is_zero()
    }

    /// The Galois conjugate `u − v·√2` (the map `√2 ↦ −√2`).
    pub fn conj_root2(&self) -> Zroot2 {
        Zroot2::new(self.u.clone(), -&self.v)
    }

    /// The field norm `u² − 2v² ∈ Z` (product with the Galois conjugate).
    pub fn field_norm(&self) -> IBig {
        &(&self.u * &self.u) - &(&self.v * &self.v).double()
    }

    /// Sign of the real value `u + v·√2`, computed exactly.
    ///
    /// Coefficients that fit `i64` are compared entirely in `i128`
    /// (`u²` and `2v²` both fit), skipping bigint products on the hot
    /// norm-balancing path of the canonical-associate search.
    pub fn signum(&self) -> Ordering {
        use Ordering::*;
        if let (Some(u), Some(v)) = (self.u.to_i64(), self.v.to_i64()) {
            let (u, v) = (u as i128, v as i128);
            return match (u.signum(), v.signum()) {
                (0, 0) => Equal,
                (u_sign, v_sign) if u_sign >= 0 && v_sign >= 0 => Greater,
                (u_sign, v_sign) if u_sign <= 0 && v_sign <= 0 => Less,
                // Mixed signs: the dominant square decides.
                (u_sign, _) => match (u * u).cmp(&(2 * v * v)) {
                    Equal => Equal, // impossible for nonzero u,v (√2 irrational)
                    Greater if u_sign > 0 => Greater,
                    Greater => Less,
                    Less if u_sign > 0 => Less,
                    Less => Greater,
                },
            };
        }
        match (self.u.sign(), self.v.sign()) {
            (aq_bigint::Sign::Zero, aq_bigint::Sign::Zero) => Equal,
            (aq_bigint::Sign::Negative, aq_bigint::Sign::Negative)
            | (aq_bigint::Sign::Negative, aq_bigint::Sign::Zero)
            | (aq_bigint::Sign::Zero, aq_bigint::Sign::Negative) => Less,
            (aq_bigint::Sign::Positive, aq_bigint::Sign::Positive)
            | (aq_bigint::Sign::Positive, aq_bigint::Sign::Zero)
            | (aq_bigint::Sign::Zero, aq_bigint::Sign::Positive) => Greater,
            // Mixed signs: compare u² with 2v² and attribute the sign of the
            // dominant term.
            (us, _) => {
                let u2 = &self.u * &self.u;
                let v2_2 = (&self.v * &self.v).double();
                match u2.cmp(&v2_2) {
                    Equal => Equal, // impossible for nonzero u,v (√2 irrational) but harmless
                    Greater => {
                        if us == aq_bigint::Sign::Positive {
                            Greater
                        } else {
                            Less
                        }
                    }
                    Less => {
                        if us == aq_bigint::Sign::Positive {
                            Less
                        } else {
                            Greater
                        }
                    }
                }
            }
        }
    }

    /// Returns `true` if the real value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.signum() == Ordering::Greater
    }

    /// Approximate real value (for reporting only — comparisons use
    /// [`Zroot2::cmp_real`]).
    pub fn to_f64(&self) -> f64 {
        self.u.to_f64() + std::f64::consts::SQRT_2 * self.v.to_f64()
    }

    /// Exact comparison of the real values of two elements.
    pub fn cmp_real(&self, other: &Zroot2) -> Ordering {
        (self - other).signum()
    }
}

impl Add<&Zroot2> for &Zroot2 {
    type Output = Zroot2;
    fn add(self, rhs: &Zroot2) -> Zroot2 {
        Zroot2::new(&self.u + &rhs.u, &self.v + &rhs.v)
    }
}

impl Sub<&Zroot2> for &Zroot2 {
    type Output = Zroot2;
    fn sub(self, rhs: &Zroot2) -> Zroot2 {
        Zroot2::new(&self.u - &rhs.u, &self.v - &rhs.v)
    }
}

impl Mul<&Zroot2> for &Zroot2 {
    type Output = Zroot2;
    fn mul(self, rhs: &Zroot2) -> Zroot2 {
        // (u1 + v1√2)(u2 + v2√2) = u1u2 + 2v1v2 + (u1v2 + v1u2)√2
        Zroot2::new(
            &(&self.u * &rhs.u) + &(&self.v * &rhs.v).double(),
            &(&self.u * &rhs.v) + &(&self.v * &rhs.u),
        )
    }
}

impl Neg for &Zroot2 {
    type Output = Zroot2;
    fn neg(self) -> Zroot2 {
        Zroot2::new(-&self.u, -&self.v)
    }
}

impl fmt::Debug for Zroot2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Zroot2({self})")
    }
}

impl fmt::Display for Zroot2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}*sqrt2", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zr(u: i64, v: i64) -> Zroot2 {
        Zroot2::new(u.into(), v.into())
    }

    #[test]
    fn ring_ops() {
        let a = zr(1, 2);
        let b = zr(3, -1);
        assert_eq!(&a + &b, zr(4, 1));
        assert_eq!(&a - &b, zr(-2, 3));
        // (1+2√2)(3−√2) = 3 − √2 + 6√2 − 2·2 = −1 + 5√2
        assert_eq!(&a * &b, zr(-1, 5));
        assert_eq!(-&a, zr(-1, -2));
    }

    #[test]
    fn norm_multiplicative() {
        let a = zr(5, -3);
        let b = zr(-2, 7);
        assert_eq!((&a * &b).field_norm(), &a.field_norm() * &b.field_norm());
    }

    #[test]
    fn fundamental_unit() {
        let lambda = zr(1, 1);
        assert_eq!(lambda.field_norm(), (-1).into());
        let inv = zr(-1, 1); // √2 − 1 = λ⁻¹
        assert_eq!(&lambda * &inv, Zroot2::one());
    }

    #[test]
    fn exact_sign() {
        assert_eq!(zr(0, 0).signum(), Ordering::Equal);
        assert_eq!(zr(3, 0).signum(), Ordering::Greater);
        assert_eq!(zr(-3, 1).signum(), Ordering::Less); // −3 + √2 < 0
        assert_eq!(zr(-1, 1).signum(), Ordering::Greater); // √2 − 1 > 0
        assert_eq!(zr(3, -2).signum(), Ordering::Greater); // 3 − 2√2 ≈ 0.17
        assert_eq!(zr(-3, 2).signum(), Ordering::Less);
        assert_eq!(zr(1, -1).signum(), Ordering::Less); // 1 − √2 < 0
    }

    #[test]
    fn cmp_real_orders_correctly() {
        // 2 + √2 ≈ 3.41 vs 5 − √2 ≈ 3.59
        assert_eq!(zr(2, 1).cmp_real(&zr(5, -1)), Ordering::Less);
        assert_eq!(zr(2, 1).cmp_real(&zr(2, 1)), Ordering::Equal);
    }

    #[test]
    fn f64_agrees() {
        let x = zr(-7, 5);
        assert!((x.to_f64() - (-7.0 + 5.0 * 2f64.sqrt())).abs() < 1e-12);
    }
}
