//! The ring `D[ω] = Z[i, 1/√2]` with unique minimal-exponent representation.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use aq_bigint::IBig;

use crate::{Complex64, Zomega};

/// An element of `D[ω]`, the ring of complex numbers realisable exactly by
/// Clifford+T circuits:
///
/// ```text
///   α = (a·ω³ + b·ω² + c·ω + d) / √2^k
/// ```
///
/// The representation is kept **canonical** at all times using the paper's
/// Algorithm 1: the denominator exponent `k` is minimal, i.e. the numerator
/// is not divisible by `√2` (zero is stored as `0 / √2⁰`). Structural
/// equality is therefore value equality, and `Hash` is consistent.
///
/// # Examples
///
/// ```
/// use aq_rings::Domega;
///
/// // Example 6/7 of the paper: √2 canonicalises to k = −1.
/// let sqrt2 = Domega::sqrt2();
/// assert_eq!(sqrt2.k(), -1);
/// let (h, _) = (Domega::one_over_sqrt2(), ());
/// assert_eq!(&sqrt2 * &h, Domega::one());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Domega {
    num: Zomega,
    k: i64,
}

impl Domega {
    /// Creates `num / √2^k` and canonicalises to the minimal denominator
    /// exponent (Algorithm 1 of the paper).
    pub fn new(num: Zomega, k: i64) -> Self {
        let mut v = Domega { num, k };
        v.reduce();
        v
    }

    /// The value `0`.
    pub fn zero() -> Self {
        Domega {
            num: Zomega::zero(),
            k: 0,
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Domega {
            num: Zomega::one(),
            k: 0,
        }
    }

    /// The rational integer `n` (canonicalised: e.g. `2 = 1/√2⁻²`).
    pub fn from_int(n: i64) -> Self {
        Domega::new(Zomega::from_int(n), 0)
    }

    /// `ω = e^{iπ/4}`.
    pub fn omega() -> Self {
        Domega {
            num: Zomega::omega(),
            k: 0,
        }
    }

    /// The imaginary unit `i`.
    pub fn i() -> Self {
        Domega {
            num: Zomega::i(),
            k: 0,
        }
    }

    /// `√2` (canonically `1 / √2⁻¹`, Example 7 of the paper).
    pub fn sqrt2() -> Self {
        Domega::new(Zomega::sqrt2(), 0)
    }

    /// `1/√2`, the ubiquitous Hadamard factor.
    pub fn one_over_sqrt2() -> Self {
        Domega {
            num: Zomega::one(),
            k: 1,
        }
    }

    /// `1 + i√2`, the running example (Example 8) of the paper.
    pub fn one_plus_i_sqrt2() -> Self {
        // i√2 = ω² (ω − ω³) = ω³ − ω⁵ = ω³ + ω
        Domega::new(
            Zomega::new(IBig::one(), IBig::zero(), IBig::one(), IBig::one()),
            0,
        )
    }

    /// The numerator (not divisible by `√2` unless zero).
    pub fn numerator(&self) -> &Zomega {
        &self.num
    }

    /// The minimal denominator exponent `k_min`.
    pub fn k(&self) -> i64 {
        self.k
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.k == 0 && self.num.is_one()
    }

    /// Algorithm 1 of the paper: divide the numerator by `√2` while the
    /// parity criterion (`a ≡ c` and `b ≡ d (mod 2)`) holds, decrementing
    /// `k` — terminates because the Euclidean value shrinks by 4 each step.
    fn reduce(&mut self) {
        if self.num.is_zero() {
            self.k = 0;
            return;
        }
        while let Some(div) = self.num.div_sqrt2() {
            self.num = div;
            self.k -= 1;
        }
    }

    /// Multiplies by `√2^m` (negative `m` divides). Exact in `D[ω]`.
    pub fn mul_sqrt2_pow(&self, m: i64) -> Domega {
        if self.is_zero() {
            return Domega::zero();
        }
        Domega {
            num: self.num.clone(),
            k: self.k - m,
        }
    }

    /// Divides by `√2^m` (the inverse of [`Domega::mul_sqrt2_pow`]).
    pub fn div_sqrt2_pow(&self, m: i64) -> Domega {
        self.mul_sqrt2_pow(-m)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Domega {
        Domega {
            num: self.num.conj(),
            k: self.k,
        }
    }

    /// Returns `true` if the value is in the canonical reduced form every
    /// constructor produces: the denominator exponent `k` is minimal (the
    /// numerator is not divisible by `√2`; zero has `k = 0`) and the
    /// numerator's coefficient representation is canonical.
    ///
    /// Always `true` for values built through the public API — the check
    /// exists so the engine's invariant validator can prove that no pending
    /// (lazily deferred) normalization state ever escapes into an interned
    /// weight.
    pub fn is_reduced(&self) -> bool {
        let k_minimal = if self.num.is_zero() {
            self.k == 0
        } else {
            !self.num.divisible_by_sqrt2()
        };
        k_minimal && self.num.repr_is_canonical()
    }

    /// The squared absolute value `|α|² = α·ᾱ` as a real element of `D[√2]`
    /// represented in `D[ω]`.
    pub fn norm_sqr(&self) -> Domega {
        self * &self.conj()
    }

    /// Maximum bit length over the four coefficients — the quantity whose
    /// growth explains the GSE overhead in Fig. 5 of the paper.
    pub fn coeff_bits(&self) -> u64 {
        self.num
            .coeffs()
            .iter()
            .map(|c| c.bit_len())
            .max()
            .unwrap_or(0)
    }

    /// Exact equality with an integer-free check against `Zomega` scaled
    /// values is structural thanks to canonicity; this helper tests
    /// equality with `ω^j` for phase bookkeeping.
    pub fn is_power_of_omega(&self) -> Option<u8> {
        if self.k != 0 {
            return None;
        }
        let mut w = Zomega::one();
        for j in 0..8u8 {
            if self.num == w {
                return Some(j);
            }
            w = w.mul_omega();
        }
        None
    }

    /// Evaluates to a complex double using arbitrary-precision fixed-point
    /// arithmetic (no intermediate overflow or cancellation).
    pub fn to_complex64(&self) -> Complex64 {
        crate::eval::zomega_to_complex(&self.num, self.k, &aq_bigint::UBig::one())
    }
}

impl From<Zomega> for Domega {
    fn from(num: Zomega) -> Self {
        Domega::new(num, 0)
    }
}

impl Add<&Domega> for &Domega {
    type Output = Domega;
    fn add(self, rhs: &Domega) -> Domega {
        // Align to the larger exponent: num/√2^k + num'/√2^k' with k ≤ k'
        // becomes (num·√2^(k'−k) + num') / √2^k'.
        let (lo, hi) = if self.k <= rhs.k {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut scaled = lo.num.clone();
        let mut diff = hi.k - lo.k;
        while diff >= 2 {
            scaled = &scaled * &Zomega::from_int(2);
            diff -= 2;
        }
        if diff == 1 {
            scaled = scaled.mul_sqrt2();
        }
        Domega::new(&scaled + &hi.num, hi.k)
    }
}

impl Sub<&Domega> for &Domega {
    type Output = Domega;
    fn sub(self, rhs: &Domega) -> Domega {
        self + &-rhs
    }
}

impl Mul<&Domega> for &Domega {
    type Output = Domega;
    fn mul(self, rhs: &Domega) -> Domega {
        Domega::new(&self.num * &rhs.num, self.k + rhs.k)
    }
}

impl Neg for &Domega {
    type Output = Domega;
    fn neg(self) -> Domega {
        Domega {
            num: -&self.num,
            k: self.k,
        }
    }
}

impl Neg for Domega {
    type Output = Domega;
    fn neg(self) -> Domega {
        -&self
    }
}

impl fmt::Debug for Domega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Domega(({}) / sqrt2^{})", self.num, self.k)
    }
}

impl fmt::Display for Domega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.k == 0 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "({}) / sqrt2^{}", self.num, self.k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dw(a: i64, b: i64, c: i64, d: i64, k: i64) -> Domega {
        Domega::new(Zomega::new(a.into(), b.into(), c.into(), d.into()), k)
    }

    #[test]
    fn constructed_values_are_reduced_and_pending_state_is_not() {
        assert!(dw(0, 0, 0, 0, 5).is_reduced()); // zero collapses to k = 0
        assert!(dw(1, 1, 1, 1, 3).is_reduced());
        assert!(Domega::one_over_sqrt2().is_reduced());
        // hand-build the pending state `2/√2²` that `reduce` must never leak
        let pending = Domega {
            num: Zomega::from_int(2),
            k: 2,
        };
        assert!(!pending.is_reduced());
        assert!(Domega::new(pending.num.clone(), pending.k).is_reduced());
    }

    #[test]
    fn example_7_sqrt2_has_k_minus_1() {
        // √2 given as (−ω³ + ω)/√2⁰ must canonicalise to 1/√2⁻¹.
        let s = dw(-1, 0, 1, 0, 0);
        assert_eq!(s.k(), -1);
        assert_eq!(*s.numerator(), Zomega::one());
        assert_eq!(s, Domega::sqrt2());
    }

    #[test]
    fn non_minimal_representations_collapse() {
        // 2/√2² == 1
        assert_eq!(dw(0, 0, 0, 2, 2), Domega::one());
        // (2ω)/√2² == ω
        assert_eq!(dw(0, 0, 2, 0, 2), Domega::omega());
        // zero with junk exponent
        assert_eq!(dw(0, 0, 0, 0, 5), Domega::zero());
        assert_eq!(dw(0, 0, 0, 0, 5).k(), 0);
    }

    #[test]
    fn canonical_numerator_not_divisible() {
        let v = dw(6, 2, 4, 8, 3);
        assert!(!v.numerator().divisible_by_sqrt2() || v.is_zero());
    }

    #[test]
    fn hadamard_factor_squares_to_half() {
        let h = Domega::one_over_sqrt2();
        let half = &h * &h;
        assert_eq!(half, dw(0, 0, 0, 1, 2));
        assert_eq!(half.k(), 2);
        // and 2·(1/2) = 1
        assert_eq!(&half + &half, Domega::one());
    }

    #[test]
    fn addition_aligns_exponents() {
        // 1/√2 + 1/√2 = √2
        let h = Domega::one_over_sqrt2();
        assert_eq!(&h + &h, Domega::sqrt2());
        // 1 + (−1) = 0
        assert_eq!(&Domega::one() + &-&Domega::one(), Domega::zero());
        // 1 + 1/√2: stays at k = 1
        let x = &Domega::one() + &h;
        assert_eq!(x.k(), 1);
    }

    #[test]
    fn mixed_exponent_arithmetic_matches_f64() {
        let x = dw(1, -2, 3, 1, 3);
        let y = dw(0, 1, 1, -1, -2);
        let sum = (&x + &y).to_complex64();
        let fx = x.to_complex64();
        let fy = y.to_complex64();
        assert!((sum.re - (fx.re + fy.re)).abs() < 1e-12);
        assert!((sum.im - (fx.im + fy.im)).abs() < 1e-12);
        let prod = (&x * &y).to_complex64();
        let pf = fx * fy;
        assert!((prod.re - pf.re).abs() < 1e-12);
        assert!((prod.im - pf.im).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let x = Domega::one_plus_i_sqrt2();
        let n = x.norm_sqr();
        // |1 + i√2|² = 3
        assert_eq!(n, Domega::from_int(3));
    }

    #[test]
    fn omega_power_detection() {
        assert_eq!(Domega::one().is_power_of_omega(), Some(0));
        assert_eq!(Domega::omega().is_power_of_omega(), Some(1));
        assert_eq!(Domega::i().is_power_of_omega(), Some(2));
        assert_eq!((-Domega::one()).is_power_of_omega(), Some(4));
        assert_eq!(Domega::sqrt2().is_power_of_omega(), None);
        assert_eq!(Domega::from_int(3).is_power_of_omega(), None);
    }

    #[test]
    fn sqrt2_pow_shifts() {
        let x = Domega::one();
        assert_eq!(x.mul_sqrt2_pow(2), Domega::from_int(2));
        assert_eq!(x.mul_sqrt2_pow(-2), dw(0, 0, 0, 1, 2));
        assert_eq!(Domega::zero().mul_sqrt2_pow(5), Domega::zero());
    }

    #[test]
    fn coeff_bits_tracks_growth() {
        let mut x = Domega::one_plus_i_sqrt2();
        let start = x.coeff_bits();
        for _ in 0..10 {
            x = &x * &Domega::one_plus_i_sqrt2();
        }
        assert!(x.coeff_bits() > start + 5);
    }
}
