//! The cyclotomic field `Q[ω]`, algebraic closure of `D[ω]` under division.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use aq_bigint::{IBig, UBig};

use crate::{Complex64, Domega, Zomega};

/// An element of the cyclotomic field `Q[ω]`, represented as
///
/// ```text
///   q = (a·ω³ + b·ω² + c·ω + d) / (√2^k · e)
/// ```
///
/// in the unique form required by Sec. IV-B(2) of the paper: `e` is an odd
/// **positive** integer coprime to `gcd(a,b,c,d)`, and `k` is the minimal
/// denominator exponent (the numerator is not divisible by `√2`).
/// Structural equality is value equality.
///
/// `Q[ω]` is a field, so the first normalization scheme of the paper
/// (Algorithm 2) can divide by *any* non-zero edge weight via
/// [`Qomega::inverse`].
///
/// # Examples
///
/// ```
/// use aq_rings::{Domega, Qomega};
///
/// let third = Qomega::from_int_ratio(1, 3);
/// assert_eq!(&(&third + &third) + &third, Qomega::one());
/// assert_eq!(third.inverse().expect("nonzero"), Qomega::from_int(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Qomega {
    num: Zomega,
    k: i64,
    /// Odd positive denominator, coprime to the content of `num`.
    denom: UBig,
}

impl Qomega {
    /// Creates `num / (√2^k · denom)` and canonicalises.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn new(num: Zomega, k: i64, denom: UBig) -> Self {
        assert!(!denom.is_zero(), "Qomega denominator must be non-zero");
        let mut q = Qomega { num, k, denom };
        q.reduce();
        q
    }

    /// The value `0`.
    pub fn zero() -> Self {
        Qomega {
            num: Zomega::zero(),
            k: 0,
            denom: UBig::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Qomega {
            num: Zomega::one(),
            k: 0,
            denom: UBig::one(),
        }
    }

    /// The rational integer `n`.
    pub fn from_int(n: i64) -> Self {
        Qomega::from(Domega::from_int(n))
    }

    /// The rational `p / q`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn from_int_ratio(p: i64, q: i64) -> Self {
        assert!(q != 0, "zero denominator");
        let num = Zomega::from_int(if q < 0 { -p } else { p });
        Qomega::new(num, 0, UBig::from(q.unsigned_abs()))
    }

    /// The numerator.
    pub fn numerator(&self) -> &Zomega {
        &self.num
    }

    /// The `√2` denominator exponent.
    pub fn k(&self) -> i64 {
        self.k
    }

    /// The odd positive integer denominator.
    pub fn denom(&self) -> &UBig {
        &self.denom
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.k == 0 && self.denom.is_one() && self.num.is_one()
    }

    /// Returns the value as a [`Domega`] if the odd denominator is 1.
    pub fn to_domega(&self) -> Option<Domega> {
        if self.denom.is_one() {
            Some(Domega::new(self.num.clone(), self.k))
        } else {
            None
        }
    }

    fn reduce(&mut self) {
        if self.num.is_zero() {
            self.k = 0;
            self.denom = UBig::one();
            return;
        }
        // Split powers of two out of the denominator into the √2 exponent:
        // e = 2^t·e' ⟹ 1/e = 1/(√2^{2t}·e').
        if let Some(t) = self.denom.trailing_zeros() {
            if t > 0 {
                self.denom = self.denom.shr_bits(t);
                self.k += 2 * t as i64;
            }
        }
        // Minimal √2 exponent (Algorithm 1).
        while let Some(div) = self.num.div_sqrt2() {
            self.num = div;
            self.k -= 1;
        }
        // Coprime odd denominator: strip gcd(content, e).
        let g = self
            .num
            .content()
            .gcd(&IBig::from(self.denom.clone()))
            .into_magnitude();
        if !g.is_one() {
            let gi = IBig::from(g.clone());
            self.num = self.num.div_scalar_exact(&gi);
            self.denom = &self.denom / &g;
        }
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Qomega {
        Qomega {
            num: self.num.conj(),
            k: self.k,
            denom: self.denom.clone(),
        }
    }

    /// The multiplicative inverse, or `None` for zero.
    ///
    /// Constructed as in the paper (Sec. IV-B(2) / Example 8):
    /// with `N(z) = z·z̄ = u + v√2`, the inverse of the norm is
    /// `(u − v√2)/(u² − 2v²)`, so `z⁻¹ = z̄·(u − v√2)/(u² − 2v²)`.
    pub fn inverse(&self) -> Option<Qomega> {
        if self.is_zero() {
            return None;
        }
        let n = self.num.norm();
        let field_norm = n.field_norm(); // u² − 2v², non-zero
                                         // (u − v√2) as a Z[ω] element: u + v(ω³ − ω).
        let sigma = Zomega::new(n.v.clone(), IBig::zero(), -&n.v, n.u.clone());
        let mut inv_num = (&self.num.conj() * &sigma).mul_scalar(&IBig::from(self.denom.clone()));
        if field_norm.is_negative() {
            inv_num = -&inv_num;
        }
        let mag = field_norm.abs().into_magnitude();
        // mag = 2^t · odd: powers of two go to the √2 exponent.
        // aq-lint: allow(R1): field norm of a non-zero element is non-zero
        let t = mag.trailing_zeros().expect("nonzero");
        let odd = mag.shr_bits(t);
        Some(Qomega::new(inv_num, 2 * t as i64 - self.k, odd))
    }

    /// Maximum bit length over numerator coefficients and denominator —
    /// the growth metric reported for Fig. 5.
    pub fn coeff_bits(&self) -> u64 {
        self.num
            .coeffs()
            .iter()
            .map(|c| c.bit_len())
            .max()
            .unwrap_or(0)
            .max(self.denom.bit_len())
    }

    /// Evaluates to a complex double using arbitrary-precision fixed-point
    /// arithmetic.
    pub fn to_complex64(&self) -> Complex64 {
        crate::eval::zomega_to_complex(&self.num, self.k, &self.denom)
    }
}

impl From<Domega> for Qomega {
    fn from(d: Domega) -> Self {
        Qomega {
            num: d.numerator().clone(),
            k: d.k(),
            denom: UBig::one(),
        }
    }
}

impl From<Zomega> for Qomega {
    fn from(z: Zomega) -> Self {
        Qomega::new(z, 0, UBig::one())
    }
}

impl Add<&Qomega> for &Qomega {
    type Output = Qomega;
    #[allow(clippy::suspicious_arithmetic_impl)] // denominator alignment needs / and −
    fn add(self, rhs: &Qomega) -> Qomega {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        let target_k = self.k.max(rhs.k);
        let l = self.denom.lcm(&rhs.denom);
        let scale = |q: &Qomega| -> Zomega {
            let s = IBig::from(&l / &q.denom);
            q.num.mul_sqrt2_pow((target_k - q.k) as u64).mul_scalar(&s)
        };
        Qomega::new(&scale(self) + &scale(rhs), target_k, l)
    }
}

impl Sub<&Qomega> for &Qomega {
    type Output = Qomega;
    fn sub(self, rhs: &Qomega) -> Qomega {
        self + &-rhs
    }
}

impl Mul<&Qomega> for &Qomega {
    type Output = Qomega;
    fn mul(self, rhs: &Qomega) -> Qomega {
        Qomega::new(
            &self.num * &rhs.num,
            self.k + rhs.k,
            &self.denom * &rhs.denom,
        )
    }
}

impl Div<&Qomega> for &Qomega {
    type Output = Qomega;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiplication by the inverse
    fn div(self, rhs: &Qomega) -> Qomega {
        // aq-lint: allow(R1): documented panicking operator, mirroring std integer Div
        self * &rhs.inverse().expect("division by zero in Q[omega]")
    }
}

impl Neg for &Qomega {
    type Output = Qomega;
    fn neg(self) -> Qomega {
        Qomega {
            num: -&self.num,
            k: self.k,
            denom: self.denom.clone(),
        }
    }
}

impl Neg for Qomega {
    type Output = Qomega;
    fn neg(self) -> Qomega {
        -&self
    }
}

impl fmt::Debug for Qomega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Qomega(({}) / (sqrt2^{} * {}))",
            self.num, self.k, self.denom
        )
    }
}

impl fmt::Display for Qomega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.k == 0 && self.denom.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "({}) / (sqrt2^{} * {})", self.num, self.k, self.denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qi(n: i64) -> Qomega {
        Qomega::from_int(n)
    }

    #[test]
    fn canonical_form_invariants() {
        // 6/10 reduces to 3/5
        let q = Qomega::from_int_ratio(6, 10);
        assert_eq!(q, Qomega::from_int_ratio(3, 5));
        assert!(q.denom().is_odd());
        // powers of two move into the √2 exponent: 1/4 has k = 4, e = 1
        let quarter = Qomega::from_int_ratio(1, 4);
        assert_eq!(quarter.k(), 4);
        assert!(quarter.denom().is_one());
        // negative rational denominator flips sign into the numerator
        assert_eq!(
            Qomega::from_int_ratio(1, -3),
            -&Qomega::from_int_ratio(1, 3)
        );
    }

    #[test]
    fn example_8_inverse_of_one_plus_i_sqrt2() {
        // z = 1 + i√2, N(z) = 3, z⁻¹ = (1 − i√2)/3
        let z = Qomega::from(Domega::one_plus_i_sqrt2());
        let inv = z.inverse().expect("nonzero");
        assert_eq!(*inv.denom(), UBig::from(3u64));
        assert_eq!(inv.k(), 0);
        assert_eq!(
            *inv.numerator(),
            Domega::one_plus_i_sqrt2().numerator().conj()
        );
        assert_eq!(&z * &inv, Qomega::one());
    }

    #[test]
    fn field_axioms_small() {
        let vals = [
            qi(2),
            Qomega::from_int_ratio(3, 5),
            Qomega::from(Domega::one_over_sqrt2()),
            Qomega::from(Domega::omega()),
            &Qomega::from(Domega::one_plus_i_sqrt2()) * &Qomega::from_int_ratio(-7, 9),
        ];
        for x in &vals {
            for y in &vals {
                assert_eq!(&(x + y) - y, *x);
                if !y.is_zero() {
                    assert_eq!(&(x * y) / y, *x);
                }
            }
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert_eq!(Qomega::zero().inverse(), None);
    }

    #[test]
    fn inverse_with_negative_field_norm() {
        // λ = 1 + √2 has field norm −1; its inverse is √2 − 1.
        let lambda = Qomega::from(&Domega::one() + &Domega::sqrt2());
        let inv = lambda.inverse().expect("unit");
        assert_eq!(&lambda * &inv, Qomega::one());
        assert_eq!(inv, Qomega::from(&Domega::sqrt2() - &Domega::one()));
    }

    #[test]
    fn odd_denominators_multiply_and_reduce() {
        let a = Qomega::from_int_ratio(1, 3);
        let b = Qomega::from_int_ratio(1, 5);
        let p = &a * &b;
        assert_eq!(p, Qomega::from_int_ratio(1, 15));
        assert_eq!(&p * &qi(15), Qomega::one());
        // (1/3) * 3 = 1 restores denominator 1
        assert_eq!(&a * &qi(3), Qomega::one());
    }

    #[test]
    fn add_with_mixed_k_and_denoms() {
        // 1/√2 + 1/3
        let h = Qomega::from(Domega::one_over_sqrt2());
        let third = Qomega::from_int_ratio(1, 3);
        let s = &h + &third;
        let c = s.to_complex64();
        assert!((c.re - (1.0 / 2f64.sqrt() + 1.0 / 3.0)).abs() < 1e-12);
        assert!(c.im.abs() < 1e-12);
        // subtracting back recovers the inputs exactly
        assert_eq!(&s - &third, h);
        assert_eq!(&s - &h, third);
    }

    #[test]
    fn conj_fixed_points_and_involution() {
        let q = &Qomega::from(Domega::omega()) * &Qomega::from_int_ratio(2, 7);
        assert_eq!(q.conj().conj(), q);
        let real = Qomega::from_int_ratio(5, 9);
        assert_eq!(real.conj(), real);
    }

    #[test]
    fn to_domega_boundary() {
        assert!(Qomega::from_int_ratio(1, 3).to_domega().is_none());
        let d = Qomega::from(Domega::one_over_sqrt2())
            .to_domega()
            .expect("denominator 1");
        assert_eq!(d, Domega::one_over_sqrt2());
    }
}
