//! Exact algebraic number systems for quantum computation.
//!
//! This crate implements the algebraic machinery of the paper *“Overcoming
//! the Trade-off between Accuracy and Compactness in Decision Diagrams for
//! Quantum Computation”* (Sec. IV):
//!
//! * [`Zroot2`] — the real quadratic ring `Z[√2]`, used for norms.
//! * [`Zomega`] — the ring of cyclotomic integers `Z[ω]` with
//!   `ω = e^{iπ/4} = (1+i)/√2`, a Euclidean ring (division and GCDs).
//! * [`Domega`] — the ring `D[ω] = Z[i, 1/√2]` of all complex numbers
//!   realisable exactly by Clifford+T circuits, stored with the **minimal
//!   denominator exponent** (Algorithm 1 of the paper) so representations
//!   are unique.
//! * [`Qomega`] — the cyclotomic field `Q[ω]`, the algebraic closure used
//!   for edge-weight normalization with multiplicative inverses
//!   (Algorithm 2 of the paper).
//! * [`Complex64`] — plain double-precision complex numbers plus the
//!   tolerance-based comparison that the *numerical* QMDD representation
//!   uses (Sec. III), provided here so both number systems share one home.
//!
//! Every element of `D[ω]` can be written as
//!
//! ```text
//!        1
//!   α = ──── (a·ω³ + b·ω² + c·ω + d),      a, b, c, d, k ∈ Z
//!       √2^k
//! ```
//!
//! and the canonical form fixes `k` minimal. The coefficients are
//! arbitrary-precision [`aq_bigint::IBig`]s (the paper uses GMP; see
//! `DESIGN.md` for the substitution note).
//!
//! # Examples
//!
//! ```
//! use aq_rings::{Domega, Qomega};
//!
//! // 1/√2, the Hadamard scale factor, is exact:
//! let h = Domega::one_over_sqrt2();
//! assert_eq!(&h * &h, Domega::from_int(1).div_sqrt2_pow(2));
//!
//! // Q[ω] is a field: (1 + i√2)⁻¹ = (1 − i√2)/3  (Example 8 of the paper)
//! let z = Qomega::from(Domega::one_plus_i_sqrt2());
//! let inv = z.inverse().expect("nonzero");
//! assert_eq!(&z * &inv, Qomega::one());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod assoc;
mod complex;
mod domega;
mod eval;
mod qomega;
mod zomega;
mod zroot2;

pub use complex::{is_exact_eps, Complex64, Tolerance};
pub use domega::Domega;
pub use qomega::Qomega;
pub use zomega::Zomega;
pub use zroot2::Zroot2;
