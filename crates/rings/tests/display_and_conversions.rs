//! Display formatting and conversion-path tests for the ring types.

use aq_bigint::IBig;
use aq_rings::{Complex64, Domega, Qomega, Zomega, Zroot2};

#[test]
fn zomega_display() {
    let z = Zomega::new(IBig::from(-1), IBig::zero(), IBig::from(2), IBig::from(3));
    assert_eq!(z.to_string(), "-1w3 + 0w2 + 2w + 3");
}

#[test]
fn zroot2_display_and_debug() {
    let x = Zroot2::new(IBig::from(4), IBig::from(-1));
    assert_eq!(x.to_string(), "4 + -1*sqrt2");
    assert!(format!("{x:?}").contains("Zroot2"));
}

#[test]
fn domega_display_shows_denominator_only_when_present() {
    assert_eq!(Domega::from_int(1).to_string(), "0w3 + 0w2 + 0w + 1");
    let h = Domega::one_over_sqrt2();
    assert_eq!(h.to_string(), "(0w3 + 0w2 + 0w + 1) / sqrt2^1");
}

#[test]
fn qomega_display_roundtrips_meaning() {
    let q = Qomega::from_int_ratio(3, 5);
    assert_eq!(q.to_string(), "(0w3 + 0w2 + 0w + 3) / (sqrt2^0 * 5)");
    assert_eq!(Qomega::one().to_string(), "0w3 + 0w2 + 0w + 1");
}

#[test]
fn conversion_chain_is_lossless() {
    // IBig -> Zomega -> Domega -> Qomega -> Complex64
    let z = Zomega::new(IBig::from(7), IBig::from(-3), IBig::from(2), IBig::from(11));
    let d = Domega::from(z.clone());
    let q = Qomega::from(d.clone());
    assert_eq!(q.to_domega().expect("unit denominator"), d);
    let c1 = z.to_complex64();
    let c2 = q.to_complex64();
    assert!((c1 - c2).abs() < 1e-12);
}

#[test]
fn complex_display() {
    let c = Complex64::new(1.5, -0.25);
    assert_eq!(c.to_string(), "1.5-0.25i");
    assert_eq!(format!("{c:?}"), "(1.5-0.25i)");
}

#[test]
fn from_int_ratio_sign_handling() {
    assert_eq!(Qomega::from_int_ratio(-3, -5), Qomega::from_int_ratio(3, 5));
    assert_eq!(Qomega::from_int_ratio(0, 7), Qomega::zero());
}

#[test]
#[should_panic(expected = "zero denominator")]
fn from_int_ratio_rejects_zero_denominator() {
    let _ = Qomega::from_int_ratio(1, 0);
}

#[test]
fn zomega_scalar_helpers() {
    let z = Zomega::new(IBig::from(6), IBig::from(-9), IBig::from(12), IBig::from(3));
    assert_eq!(z.content(), IBig::from(3));
    let scaled = z.mul_scalar(&IBig::from(2));
    assert_eq!(scaled.content(), IBig::from(6));
    let back = scaled.div_scalar_exact(&IBig::from(2));
    assert_eq!(back, z);
    // √2-power helper agrees with repeated multiplication
    let via_pow = z.mul_sqrt2_pow(3);
    let via_mul = z.mul_sqrt2().mul_sqrt2().mul_sqrt2();
    assert_eq!(via_pow, via_mul);
}

#[test]
fn domega_coeff_bits_and_pow_tracking() {
    let small = Domega::one();
    assert_eq!(small.coeff_bits(), 1);
    // odd numerator so canonicalization cannot strip it into the exponent
    let big = &(&IBig::from(1) << 100) + &IBig::from(1);
    let q = Qomega::new(
        Zomega::new(IBig::zero(), IBig::zero(), IBig::zero(), big),
        0,
        3u64.into(),
    );
    assert!(q.coeff_bits() >= 100);
}
