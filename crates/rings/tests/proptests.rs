//! Property-based tests for the algebraic number systems: ring/field axioms,
//! canonical-form invariants, Euclidean structure, and agreement between
//! exact arithmetic and floating-point evaluation.

use aq_bigint::IBig;
use aq_rings::{assoc::canonical_associate, Complex64, Domega, Qomega, Zomega};
use aq_testutil::proptest::prelude::*;

fn small_ibig() -> impl Strategy<Value = IBig> {
    (-1000i64..1000).prop_map(IBig::from)
}

fn zomega() -> impl Strategy<Value = Zomega> {
    (small_ibig(), small_ibig(), small_ibig(), small_ibig())
        .prop_map(|(a, b, c, d)| Zomega::new(a, b, c, d))
}

/// Coefficients straddling the `i64` boundary of the inline `Zomega`
/// representation: small, hugging `i64::MAX`/`i64::MIN` from inside, and
/// just past the boundary (heap-promoted).
fn boundary_coeff() -> impl Strategy<Value = IBig> {
    prop_oneof![
        (-1000i64..1000).prop_map(IBig::from),
        (0i64..1000).prop_map(|m| IBig::from(i64::MAX - m)),
        (i64::MIN..i64::MIN + 1000).prop_map(IBig::from),
        (1i64..1000).prop_map(|m| IBig::from(i64::MAX as i128 + m as i128)),
        (1i64..1000).prop_map(|m| IBig::from(i64::MIN as i128 - m as i128)),
    ]
}

fn boundary_zomega() -> impl Strategy<Value = Zomega> {
    (
        boundary_coeff(),
        boundary_coeff(),
        boundary_coeff(),
        boundary_coeff(),
    )
        .prop_map(|(a, b, c, d)| Zomega::new(a, b, c, d))
}

/// Reference multiplication straight from the `ω⁴ = −1` reduction rules,
/// entirely in heap bigint arithmetic — the oracle the inline `i64`/`i128`
/// fast paths must agree with bit for bit.
fn reference_mul(x: &Zomega, y: &Zomega) -> [IBig; 4] {
    let [a, b, c, d] = x.coeffs();
    let [e, f, g, h] = y.coeffs();
    [
        &(&(&a * &h) + &(&b * &g)) + &(&(&c * &f) + &(&d * &e)),
        &(&(&b * &h) + &(&c * &g)) + &(&(&d * &f) - &(&a * &e)),
        &(&(&c * &h) + &(&d * &g)) - &(&(&a * &f) + &(&b * &e)),
        &(&(&d * &h) - &(&a * &g)) - &(&(&b * &f) + &(&c * &e)),
    ]
}

fn domega() -> impl Strategy<Value = Domega> {
    (zomega(), -6i64..6).prop_map(|(z, k)| Domega::new(z, k))
}

fn qomega() -> impl Strategy<Value = Qomega> {
    (zomega(), -6i64..6, 1u64..50).prop_map(|(z, k, e)| Qomega::new(z, k, aq_bigint::UBig::from(e)))
}

/// A random unit of `D[ω]`: product of generators `1/√2`, `ω`, `ω+1`, `−1`.
fn unit() -> impl Strategy<Value = Domega> {
    prop::collection::vec(0usize..4, 0..5).prop_map(|gens| {
        let mut u = Domega::one();
        for g in gens {
            let f = match g {
                0 => Domega::one_over_sqrt2(),
                1 => Domega::omega(),
                2 => Domega::from(&Zomega::omega() + &Zomega::one()),
                _ => -Domega::one(),
            };
            u = &u * &f;
        }
        u
    })
}

fn close(a: Complex64, b: Complex64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zomega_ring_axioms(x in zomega(), y in zomega(), z in zomega()) {
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&x * &y, &y * &x);
        prop_assert_eq!(&(&x + &y) * &z, &(&x * &z) + &(&y * &z));
        prop_assert_eq!(&(&x * &y) * &z, &x * &(&y * &z));
        prop_assert_eq!(&x - &x, Zomega::zero());
    }

    #[test]
    fn zomega_norm_multiplicative_and_positive(x in zomega(), y in zomega()) {
        prop_assert_eq!((&x * &y).norm(), &x.norm() * &y.norm());
        if !x.is_zero() {
            prop_assert!(x.norm().is_positive());
        }
    }

    #[test]
    fn zomega_mul_matches_complex(x in zomega(), y in zomega()) {
        let lhs = (&x * &y).to_complex64();
        let rhs = x.to_complex64() * y.to_complex64();
        prop_assert!(close(lhs, rhs), "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn euclidean_division_reduces(x in zomega(), y in zomega()) {
        prop_assume!(!y.is_zero());
        let (q, r) = x.div_rem(&y);
        prop_assert_eq!(&(&q * &y) + &r, x);
        prop_assert!(r.euclidean_value() < y.euclidean_value());
    }

    #[test]
    fn gcd_divides_inputs(x in zomega(), y in zomega()) {
        prop_assume!(!x.is_zero() || !y.is_zero());
        let g = x.gcd(&y);
        prop_assert!(!g.is_zero());
        prop_assert!(x.div_rem(&g).1.is_zero());
        prop_assert!(y.div_rem(&g).1.is_zero());
    }

    #[test]
    fn domega_canonical_k_minimal(x in domega()) {
        if !x.is_zero() {
            prop_assert!(!x.numerator().divisible_by_sqrt2());
        } else {
            prop_assert_eq!(x.k(), 0);
        }
    }

    #[test]
    fn domega_add_mul_match_complex(x in domega(), y in domega()) {
        prop_assert!(close((&x + &y).to_complex64(), x.to_complex64() + y.to_complex64()));
        prop_assert!(close((&x * &y).to_complex64(), x.to_complex64() * y.to_complex64()));
        prop_assert!(close((&x - &y).to_complex64(), x.to_complex64() - y.to_complex64()));
    }

    #[test]
    fn domega_equality_iff_difference_zero(x in domega(), y in domega()) {
        prop_assert_eq!(x == y, (&x - &y).is_zero());
    }

    #[test]
    fn qomega_field_axioms(x in qomega(), y in qomega()) {
        prop_assert_eq!(&(&x + &y) - &y, x.clone());
        if !y.is_zero() {
            prop_assert_eq!(&(&x * &y) / &y, x.clone());
            let inv = y.inverse().expect("nonzero");
            prop_assert_eq!(&y * &inv, Qomega::one());
        }
    }

    #[test]
    fn qomega_canonical_denominator(x in qomega()) {
        prop_assert!(x.denom().is_odd());
        if x.is_zero() {
            prop_assert!(x.denom().is_one());
            prop_assert_eq!(x.k(), 0);
        } else {
            // denominator coprime to the numerator content
            let g = x.numerator().content().gcd(&IBig::from(x.denom().clone()));
            prop_assert!(g.is_one() || x.denom().is_one());
        }
    }

    #[test]
    fn qomega_matches_complex(x in qomega(), y in qomega()) {
        prop_assert!(close((&x + &y).to_complex64(), x.to_complex64() + y.to_complex64()));
        prop_assert!(close((&x * &y).to_complex64(), x.to_complex64() * y.to_complex64()));
    }

    #[test]
    fn canonical_associate_unit_invariant(z in domega(), u in unit()) {
        prop_assume!(!z.is_zero());
        let (c1, u1) = canonical_associate(&z);
        let zu = &z * &u;
        let (c2, _) = canonical_associate(&zu);
        prop_assert_eq!(&c1, &c2, "canonical form must be unit-invariant");
        // and the decomposition reproduces the value
        prop_assert_eq!(&Domega::from(c1) * &u1, z);
    }

    #[test]
    fn canonical_associate_idempotent(z in domega()) {
        prop_assume!(!z.is_zero());
        let (c, _) = canonical_associate(&z);
        let (c2, u2) = canonical_associate(&Domega::from(c.clone()));
        prop_assert_eq!(c2, c);
        prop_assert!(u2.is_one());
    }

    #[test]
    fn boundary_repr_is_canonical_and_roundtrips(x in boundary_zomega()) {
        prop_assert!(x.repr_is_canonical());
        prop_assert_eq!(x.is_inline(), x.coeffs_i64().is_some());
        let [a, b, c, d] = x.coeffs();
        prop_assert_eq!(&Zomega::new(a, b, c, d), &x);
    }

    #[test]
    fn boundary_mul_matches_bigint_reference(x in boundary_zomega(), y in boundary_zomega()) {
        let p = &x * &y;
        prop_assert_eq!(p.coeffs(), reference_mul(&x, &y));
        prop_assert!(p.repr_is_canonical());
    }

    #[test]
    fn boundary_add_sub_neg_match_reference(x in boundary_zomega(), y in boundary_zomega()) {
        let xs = x.coeffs();
        let ys = y.coeffs();
        let sum = &x + &y;
        let diff = &x - &y;
        let neg = -&x;
        for i in 0..4 {
            prop_assert_eq!(&sum.coeffs()[i], &(&xs[i] + &ys[i]));
            prop_assert_eq!(&diff.coeffs()[i], &(&xs[i] - &ys[i]));
            prop_assert_eq!(&neg.coeffs()[i], &-&xs[i]);
        }
        prop_assert!(sum.repr_is_canonical());
        prop_assert!(diff.repr_is_canonical());
        prop_assert!(neg.repr_is_canonical());
    }

    #[test]
    fn boundary_conj_and_norm_agree_with_heap_form(x in boundary_zomega()) {
        // ω̄ = −ω³ gives conj(aω³ + bω² + cω + d) = −cω³ − bω² − aω + d
        let [a, b, c, d] = x.coeffs();
        let conj = x.conj();
        prop_assert_eq!(conj.coeffs(), [-&c, -&b, -&a, d]);
        prop_assert!(conj.repr_is_canonical());
        // N(z) = z·z̄ = u + v√2, which embeds as −vω³ + vω + u
        let n = x.norm();
        let prod = &x * &conj;
        prop_assert_eq!(prod.coeffs(), [-&n.v, IBig::zero(), n.v.clone(), n.u.clone()]);
    }

    #[test]
    fn boundary_div_sqrt2_roundtrips(x in boundary_zomega()) {
        match x.div_sqrt2() {
            Some(half) => {
                prop_assert!(half.repr_is_canonical());
                prop_assert_eq!(half.mul_sqrt2(), x.clone());
            }
            None => prop_assert!(!x.divisible_by_sqrt2()),
        }
        // ·√2 then /√2 is always the identity, across the repr boundary
        let doubled = x.mul_sqrt2();
        prop_assert!(doubled.repr_is_canonical());
        prop_assert_eq!(doubled.div_sqrt2().expect("multiple of sqrt2"), x);
    }

    #[test]
    fn boundary_cancellation_demotes(x in boundary_zomega(), y in zomega()) {
        // (x + y) − x recovers y exactly, landing back on y's (inline) repr
        let back = &(&x + &y) - &x;
        prop_assert_eq!(&back, &y);
        prop_assert_eq!(back.is_inline(), y.is_inline());
        prop_assert!(back.repr_is_canonical());
    }

    #[test]
    fn boundary_domega_reduces(x in boundary_zomega(), k in -6i64..6) {
        let d = Domega::new(x, k);
        prop_assert!(d.is_reduced());
    }

    #[test]
    fn conj_mul_compatible(x in domega(), y in domega()) {
        prop_assert_eq!((&x * &y).conj(), &x.conj() * &y.conj());
        let n = x.norm_sqr().to_complex64();
        prop_assert!(n.im.abs() < 1e-9);
        prop_assert!(n.re >= -1e-9);
    }
}
