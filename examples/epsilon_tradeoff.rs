//! The accuracy–compactness trade-off, live: sweep the tolerance value ε
//! over a Grover simulation and watch compactness, accuracy and run-time
//! move against each other (the paper's Sec. III / Fig. 3 in miniature).
//!
//! ```text
//! cargo run --release --example epsilon_tradeoff [n_qubits]
//! ```

use aqudd::circuits::grover;
use aqudd::dd::{NormScheme, NumericContext, QomegaContext};
use aqudd::sim::{normalized_distance, Simulator};
use std::time::Instant;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(9);
    let marked = (1u64 << n) - 3;
    let circuit = grover(n, marked);
    println!(
        "Grover on {n} qubits ({} gates); marked element {marked}\n",
        circuit.len()
    );

    // Exact algebraic reference (and its own cost).
    let t0 = Instant::now();
    let mut reference = Simulator::new(QomegaContext::new(), &circuit);
    let ref_result = reference.run();
    let ref_secs = t0.elapsed().as_secs_f64();

    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>10}",
        "epsilon", "peak nodes", "final nodes", "error", "seconds"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>10.3}",
        "algebraic",
        ref_result.trace.peak_nodes(),
        ref_result.final_nodes,
        "0 (exact)",
        ref_secs
    );

    for eps in [0.0, 1e-20, 1e-15, 1e-10, 1e-7, 1e-5, 1e-3, 1e-1] {
        let ctx = NumericContext::with_eps_and_scheme(eps, NormScheme::MaxMagnitude);
        let t0 = Instant::now();
        let mut sim = Simulator::new(ctx, &circuit);
        let result = sim.run();
        let secs = t0.elapsed().as_secs_f64();
        let err = normalized_distance(&result.amplitudes, &ref_result.amplitudes);
        println!(
            "{:<12.0e} {:>12} {:>12} {:>14.3e} {:>10.3}",
            eps,
            result.trace.peak_nodes(),
            result.final_nodes,
            err,
            secs
        );
    }

    println!(
        "\nsmall ε: huge diagrams (misses redundancies); large ε: corrupted\n\
         results (down to the zero vector). The algebraic representation\n\
         gets compactness AND exactness — with no parameter to tune."
    );
}
