//! Simulate an OpenQASM 2.0 file with exact algebraic QMDDs.
//!
//! ```text
//! cargo run --release --example qasm_sim -- path/to/circuit.qasm
//! cargo run --release --example qasm_sim            # built-in demo circuit
//! ```
//!
//! Prints the outcome distribution, the state's decision-diagram size and
//! a Graphviz rendering of the final state.

use aqudd::circuits::qasm::parse_qasm;
use aqudd::dd::QomegaContext;
use aqudd::sim::Simulator;

const DEMO: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0], q[1];
ccx q[0], q[1], q[2];
t q[2];
cx q[1], q[2];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            println!("(no file given — simulating the built-in demo circuit)\n{DEMO}");
            DEMO.to_string()
        }
    };
    let circuit = parse_qasm(&source)?;
    println!(
        "{} qubits, {} operations, exactly representable: {}",
        circuit.n_qubits(),
        circuit.len(),
        circuit.is_exact()
    );

    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    let result = sim.run();
    println!("\noutcome probabilities (non-zero):");
    for (i, p) in result.probabilities().iter().enumerate() {
        if *p > 1e-12 {
            println!(
                "  |{:0width$b}⟩  {p:.6}",
                i,
                width = circuit.n_qubits() as usize
            );
        }
    }
    println!(
        "\nfinal state: {} DD nodes (of at most {}), norm {:.12}",
        result.final_nodes,
        (1u64 << circuit.n_qubits()) - 1,
        result.probabilities().iter().sum::<f64>()
    );

    let state = sim.state();
    println!("\nGraphviz of the final state DD:\n");
    println!("{}", sim.manager().vec_to_dot(&state));
    Ok(())
}
