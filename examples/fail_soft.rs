//! Fail-soft simulation under resource budgets: cap nodes, distinct
//! weights, coefficient bits and wall-clock time, and get a structured
//! abort with everything the run *did* produce — instead of an OOM kill
//! or a panic — when the exact run blows up (the paper's Fig. 5 regime).
//!
//! ```text
//! cargo run --release --example fail_soft [max_nodes]
//! ```

use aqudd::circuits::grover;
use aqudd::dd::{QomegaContext, RunBudget};
use aqudd::sim::{SimOptions, Simulator};

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let circuit = grover(8, 113);
    println!(
        "Grover on 8 qubits ({} gates), node budget {max_nodes}\n",
        circuit.len()
    );

    let budget = RunBudget::unlimited()
        .with_max_nodes(max_nodes)
        .with_deadline(std::time::Duration::from_secs(30));
    let mut sim = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            budget,
            ..SimOptions::default()
        },
    );

    match sim.try_run() {
        Ok(result) => {
            let best = result
                .probabilities()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i);
            println!(
                "completed: most likely outcome {:?}, peak {} nodes",
                best,
                result.trace.peak_nodes()
            );
        }
        Err(abort) => {
            // the abort carries the partial trace and the engine counters
            println!("aborted: {}", abort.error);
            println!(
                "  gates applied : {}/{}",
                abort.gates_applied,
                circuit.len()
            );
            println!("  trace points  : {}", abort.trace.points.len());
            println!("  peak nodes    : {}", abort.trace.peak_nodes());
            println!(
                "  nodes alloc'd : {}",
                abort.statistics.vec_nodes + abort.statistics.mat_nodes
            );
            println!(
                "  cache hit rate: {:.1}%",
                100.0 * abort.statistics.cache_hit_rate()
            );
            println!("\nretry with a larger budget, e.g.:");
            println!(
                "  cargo run --release --example fail_soft {}",
                max_nodes * 8
            );
        }
    }
}
