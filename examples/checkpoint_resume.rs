//! Crash-safe simulation: a budget-aborted run dumps a checkpoint, and a
//! "later process" resumes the sweep from it instead of starting over —
//! with bit-identical results, because the checkpoint carries the full
//! manager (nodes, unique tables and the complete weight table).
//!
//! ```text
//! cargo run --release --example checkpoint_resume [max_nodes]
//! ```

use aqudd::circuits::{bwt, BwtParams};
use aqudd::dd::{QomegaContext, RunBudget};
use aqudd::sim::{peek_checkpoint, SimOptions, Simulator};

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let (circuit, tree) = bwt(BwtParams {
        height: 3,
        steps: 20,
        seed: 0xBD7,
    });
    let path = std::env::temp_dir().join("aqudd_bwt_example.aqckp");
    std::fs::remove_file(&path).ok();
    println!(
        "BWT walk: height 3, {} qubits, {} ops; node budget {max_nodes}\n",
        circuit.n_qubits(),
        circuit.len()
    );

    // ---- process 1: run under a tight budget, dumping a checkpoint on abort
    let mut sim = Simulator::with_options(
        QomegaContext::new(),
        &circuit,
        SimOptions {
            budget: RunBudget::unlimited().with_max_nodes(max_nodes),
            checkpoint_on_abort: Some(path.clone()),
            ..SimOptions::default()
        },
    );
    sim.try_reset_to(tree.coined_start())
        .expect("budget allows the start state");
    let abort = match sim.try_run() {
        Ok(result) => {
            println!(
                "budget was roomy enough — run completed at peak {} nodes; \
                 try a smaller max_nodes",
                result.trace.peak_nodes()
            );
            return;
        }
        Err(abort) => abort,
    };
    println!("process 1 aborted: {}", abort.error);
    println!(
        "  gates applied : {}/{}",
        abort.gates_applied,
        circuit.len()
    );
    let ckpt = abort.checkpoint.as_ref().expect("checkpoint was dumped");
    println!("  checkpoint    : {}", ckpt.display());

    // ---- process 2: inspect the checkpoint, then resume with a roomier budget
    let info = peek_checkpoint(ckpt).expect("readable checkpoint");
    println!(
        "\nprocess 2 resuming `{}` at gate {}/{}",
        info.label, info.gates_applied, info.circuit_len
    );
    let (mut resumed, _trace) =
        Simulator::resume(QomegaContext::new(), &circuit, ckpt, SimOptions::default())
            .expect("checkpoint matches circuit and context");
    let result = resumed.try_run().expect("unlimited budget completes");
    println!(
        "resumed run finished: {} final nodes, peak {} nodes over the remainder",
        result.final_nodes,
        result.trace.peak_nodes()
    );

    // the checkpointed run is bit-identical to an uninterrupted one
    let mut reference = Simulator::new(QomegaContext::new(), &circuit);
    reference
        .try_reset_to(tree.coined_start())
        .expect("unlimited budget");
    let expected = reference.try_run().expect("completes");
    assert_eq!(result.amplitudes, expected.amplitudes);
    println!("amplitudes match an uninterrupted run exactly");
    std::fs::remove_file(&path).ok();
}
