//! Batch-serving in process: start an `aq-serve` core with a mixed
//! worker pool, submit jobs across both scheme classes, survive a budget
//! abort by resuming its checkpoint, and read the metrics back.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! The same lifecycle works over TCP: start `aq-served --port=0` and
//! drive it with `aq-cli` (see the README's "Serving" section).

use std::sync::Arc;
use std::time::Duration;

use aqudd::dd::RunBudget;
use aqudd::serve::{
    CircuitSpec, Client, JobState, Response, SchemeClass, ServeConfig, ServeCore, SubmitRequest,
};
use aqudd::sim::SchemeSpec;

fn submit(
    client: &Client,
    circuit: CircuitSpec,
    scheme: SchemeSpec,
    budget: RunBudget,
) -> Option<u64> {
    match client.submit(SubmitRequest {
        circuit,
        scheme,
        priority: 0,
        budget,
        resume: None,
        top_k: 3,
        sample: None,
    }) {
        Response::Submitted { job } => Some(job),
        Response::Rejected { reason, .. } => {
            println!("  rejected: {reason}");
            None
        }
        other => panic!("unexpected response: {other:?}"),
    }
}

fn main() {
    // Two workers, one per scheme class: float jobs and exact-arithmetic
    // jobs never block each other.
    let core = ServeCore::start(ServeConfig {
        workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
        queue_capacity: 16,
        checkpoint_dir: std::env::temp_dir().join("aq-serve-example"),
        ..ServeConfig::default()
    })
    .expect("start worker pool");
    let client = Client::new(Arc::clone(&core));
    let roomy = RunBudget::unlimited()
        .with_max_nodes(2_000_000)
        .with_deadline(Duration::from_secs(60));

    println!("submitting a numeric and an exact Grover search...");
    let numeric = submit(
        &client,
        CircuitSpec::Grover { n: 6, marked: 42 },
        SchemeSpec::Numeric { eps: 1e-10 },
        roomy,
    )
    .unwrap();
    let exact = submit(
        &client,
        CircuitSpec::Grover { n: 6, marked: 42 },
        SchemeSpec::Qomega,
        roomy,
    )
    .unwrap();

    // A budget is mandatory — unbounded jobs are refused at admission.
    println!("submitting without a budget (must be rejected)...");
    assert!(submit(
        &client,
        CircuitSpec::Qft { n: 5 },
        SchemeSpec::Numeric { eps: 1e-10 },
        RunBudget::unlimited(),
    )
    .is_none());

    // Starve a job so it aborts with a checkpoint...
    println!("submitting a starved job (aborts, checkpoints)...");
    let starved = submit(
        &client,
        CircuitSpec::Grover { n: 8, marked: 113 },
        SchemeSpec::Numeric { eps: 1e-10 },
        RunBudget::unlimited().with_max_nodes(64),
    )
    .unwrap();

    for job in [numeric, exact] {
        match client.wait(job, Duration::from_secs(120)) {
            Response::Status(report) => {
                let outcome = report.outcome.as_ref().unwrap();
                println!(
                    "  job {job} [{}] {}: top outcome {:?} ({} gates, {} nodes)",
                    report.label,
                    report.state.as_str(),
                    outcome.top_probabilities.first().map(|(i, _)| i),
                    outcome.gates_applied,
                    outcome.final_nodes,
                );
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    // ...and resume it with a real budget: bit-identical continuation.
    let checkpoint = match client.wait(starved, Duration::from_secs(120)) {
        Response::Status(report) => {
            assert_eq!(report.state, JobState::Aborted);
            let abort = report.outcome.unwrap().aborted.unwrap();
            println!("  job {starved} aborted: {}", abort.reason);
            abort.checkpoint.expect("budget abort leaves a checkpoint")
        }
        other => panic!("unexpected response: {other:?}"),
    };
    println!("resuming the aborted job from {}", checkpoint.display());
    let resumed = client.submit(SubmitRequest {
        circuit: CircuitSpec::Grover { n: 8, marked: 113 },
        scheme: SchemeSpec::Numeric { eps: 1e-10 },
        priority: 9, // jump the queue
        budget: roomy,
        resume: Some(checkpoint),
        top_k: 3,
        sample: None,
    });
    let resumed = match resumed {
        Response::Submitted { job } => job,
        other => panic!("unexpected response: {other:?}"),
    };
    match client.wait(resumed, Duration::from_secs(120)) {
        Response::Status(report) => {
            let outcome = report.outcome.as_ref().unwrap();
            assert!(outcome.resumed);
            println!(
                "  job {resumed} {}: top outcome {:?} after {} gates total",
                report.state.as_str(),
                outcome.top_probabilities.first().map(|(i, _)| i),
                outcome.gates_applied,
            );
        }
        other => panic!("unexpected response: {other:?}"),
    }

    client.drain();
    let m = client.metrics();
    println!(
        "metrics: submitted={} completed={} aborted={} rejected={} (reconciles: {})",
        m.submitted,
        m.completed,
        m.aborted,
        m.rejected,
        m.reconciles(),
    );
    assert!(m.reconciles());
    client.shutdown();
}
