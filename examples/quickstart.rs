//! Quickstart: build a Bell state three ways — exactly in `Q[ω]`, exactly
//! in `D[ω]` with GCD normalization, and numerically with a tolerance —
//! and see that the exact representations agree structurally while the
//! numeric one only agrees up to ε.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aqudd::dd::{GateMatrix, GcdContext, Manager, NumericContext, QomegaContext, WeightContext};

fn bell_state<W: WeightContext>(label: &str, ctx: W) {
    let mut m = Manager::new(ctx, 2);
    let state = m.basis_state(0b00);
    let h = m.gate(&GateMatrix::h(), 0, &[]);
    let cx = m.gate(&GateMatrix::x(), 1, &[(0, true)]);
    let after_h = m.mat_vec(&h, &state);
    let bell = m.mat_vec(&cx, &after_h);

    println!("— {label} —");
    println!("  decision-diagram nodes: {}", m.vec_nodes(&bell));
    println!("  distinct weights interned: {}", m.distinct_weights());
    for (i, amp) in m.amplitudes(&bell).iter().enumerate() {
        println!("  ⟨{i:02b}|ψ⟩ = {amp}");
    }
}

fn main() {
    // The exact contexts represent 1/√2 algebraically: applying H twice
    // gives *literally* the identity, not something 1e−16 away from it.
    bell_state(
        "algebraic Q[ω] (Algorithm 2 normalization)",
        QomegaContext::new(),
    );
    bell_state(
        "algebraic D[ω] (Algorithm 3, GCD normalization)",
        GcdContext::new(),
    );
    bell_state(
        "numeric doubles, ε = 1e−10",
        NumericContext::with_eps(1e-10),
    );

    // Canonicity in action: HH = I is an O(1) root-edge comparison.
    let mut m = Manager::new(QomegaContext::new(), 2);
    let h = m.gate(&GateMatrix::h(), 1, &[]);
    let hh = m.mat_mul(&h, &h);
    let id = m.identity();
    println!("\nexact HH == I (root comparison): {}", hh == id);

    let mut m = Manager::new(NumericContext::new(), 2);
    let h = m.gate(&GateMatrix::h(), 1, &[]);
    let hh = m.mat_mul(&h, &h);
    let id = m.identity();
    println!(
        "ε = 0 floating-point HH == I:      {}  (the paper's Sec. III problem!)",
        hh == id
    );
}
