//! Ground State Estimation (the paper's Fig. 2/5 workload): quantum phase
//! estimation of the H₂ molecular ground-state energy, first with numeric
//! rotation gates, then compiled to Clifford+T and simulated **exactly**.
//!
//! ```text
//! cargo run --release --example gse_energy [precision_bits]
//! ```

use aqudd::circuits::cliffordt::CliffordTCompiler;
use aqudd::circuits::{gse, GseParams};
use aqudd::dd::{NumericContext, QomegaContext};
use aqudd::sim::Simulator;

fn peak_phase(probs: &[f64], p: u32, sys_dim: usize) -> (usize, f64) {
    let mut counting = vec![0.0; 1 << p];
    for (i, pr) in probs.iter().enumerate() {
        counting[i / sys_dim] += pr;
    }
    counting
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, p)| (i, *p))
        .expect("nonempty")
}

fn main() {
    let p: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let params = GseParams {
        precision_bits: p,
        trotter_slices: 2,
        ..GseParams::default()
    };
    let e_ref = params.hamiltonian.ground_energy();
    println!("H₂ reference ground energy: {e_ref:.6} hartree");
    let expected_phase = (e_ref * params.time / std::f64::consts::TAU).rem_euclid(1.0);

    // 1. The raw rotation circuit, simulated numerically.
    let raw = gse(&params);
    println!(
        "\nQPE circuit: {} qubits, {} gates (with arbitrary rotations)",
        raw.n_qubits(),
        raw.len()
    );
    let mut sim = Simulator::new(NumericContext::with_eps(1e-12), &raw);
    let result = sim.run();
    let (m, prob) = peak_phase(&result.probabilities(), p, 4);
    let phase = m as f64 / (1u64 << p) as f64;
    println!(
        "numeric:   phase peak {m}/{} = {phase:.4} (prob {prob:.3}); expected {expected_phase:.4} → E ≈ {:.4}",
        1u64 << p,
        phase_to_energy(phase, params.time)
    );

    // 2. Compile to Clifford+T (the paper uses Quipper here) and simulate
    //    the *same* circuit exactly — no ε anywhere.
    let mut comp = CliffordTCompiler::new(8);
    let (compiled, worst) = comp.compile(&raw);
    println!(
        "\nClifford+T compiled: {} gates (worst per-rotation distance {worst:.3})",
        compiled.len()
    );
    let mut sim = Simulator::new(QomegaContext::new(), &compiled);
    let result = sim.run();
    let (m, prob) = peak_phase(&result.probabilities(), p, 4);
    let phase = m as f64 / (1u64 << p) as f64;
    println!(
        "algebraic: phase peak {m}/{} = {phase:.4} (prob {prob:.3}) → E ≈ {:.4}",
        1u64 << p,
        phase_to_energy(phase, params.time)
    );
    println!(
        "state DD: {} nodes; peak coefficient bit-width {} — the growth\n\
         behind the paper's Fig. 5 overhead discussion",
        result.final_nodes,
        result.trace.peak_weight_bits()
    );
}

fn phase_to_energy(phase: f64, t: f64) -> f64 {
    // undo phase = E·t/2π mod 1, choosing the branch in (−2π, 0] for
    // negative molecular energies
    let e = phase * std::f64::consts::TAU / t;
    if e > std::f64::consts::PI {
        e - std::f64::consts::TAU
    } else {
        e
    }
}
