//! Grover's database search simulated with exact algebraic QMDDs —
//! the paper's Fig. 3 workload as a runnable program.
//!
//! ```text
//! cargo run --release --example grover_search [n_qubits] [marked]
//! ```

use aqudd::circuits::{grover, grover_iterations};
use aqudd::dd::QomegaContext;
use aqudd::sim::Simulator;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let marked: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0b1011011011 & ((1 << n) - 1));

    println!(
        "searching {} entries for index {marked} ({} Grover iterations)…",
        1u64 << n,
        grover_iterations(n)
    );
    let circuit = grover(n, marked);
    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    let result = sim.run();

    let probs = result.probabilities();
    let (best, p) = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("nonempty");

    println!("applied {} gates", circuit.len());
    println!("most likely outcome: |{best}⟩ with probability {p:.6}");
    println!(
        "state DD: {} nodes final, {} peak — never more than a handful,\n\
         because the exact representation recognises that the state has\n\
         only two distinct amplitudes (the compactness half of the paper)",
        result.final_nodes,
        result.trace.peak_nodes()
    );
    assert_eq!(best as u64, marked, "Grover must find the marked element");
}
