//! The Binary Welded Tree quantum walk (the paper's Fig. 4 workload):
//! a coined walker crosses from the entrance root to the exit side of a
//! randomly welded pair of binary trees — exponentially faster than any
//! classical random walk — simulated with exact algebraic QMDDs.
//!
//! ```text
//! cargo run --release --example bwt_walk [height] [steps]
//! ```

use aqudd::circuits::{bwt, BwtParams};
use aqudd::dd::QomegaContext;
use aqudd::sim::Simulator;

fn main() {
    let mut args = std::env::args().skip(1);
    let height: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let steps: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);

    let (circuit, tree) = bwt(BwtParams {
        height,
        steps,
        seed: 0xBD7,
    });
    println!(
        "welded tree: height {height}, {} vertices, {} qubits ({} vertex + 2 coin)",
        tree.vertex_count(),
        circuit.n_qubits(),
        circuit.n_qubits() - 2
    );
    println!(
        "walking {} steps ({} exact operations)…\n",
        steps,
        circuit.len()
    );

    let mut sim = Simulator::new(QomegaContext::new(), &circuit);
    sim.reset_to(tree.coined_start());
    let result = sim.run();

    let probs = tree.vertex_probabilities(&result.amplitudes);
    let off = (1usize << (height + 1)) as u64;

    // probability per column of the welded tree
    let column = |v: u64| -> usize {
        if v < off {
            (63 - v.leading_zeros()) as usize // depth in tree A
        } else {
            let d = (63 - (v - off).leading_zeros()) as usize;
            (2 * height as usize + 1) - d // distance from entrance via exit side
        }
    };
    let mut per_column = vec![0.0; 2 * height as usize + 2];
    for (v, p) in probs.iter().enumerate() {
        if *p > 0.0 && v > 0 {
            per_column[column(v as u64)] += p;
        }
    }
    println!(
        "probability by column (entrance = column 0, exit = column {}):",
        2 * height + 1
    );
    for (c, p) in per_column.iter().enumerate() {
        let bar = "#".repeat((p * 120.0).round() as usize);
        println!("  col {c:>2}: {p:.4} {bar}");
    }
    println!(
        "\nP(exit vertex) = {:.4}; exit-side probability = {:.4}",
        probs[tree.exit() as usize],
        probs[off as usize..].iter().sum::<f64>()
    );
    println!(
        "state DD: {} nodes (of at most {}), norm preserved exactly: Σ|α|² = {:.12}",
        result.final_nodes,
        (1usize << circuit.n_qubits()) - 1,
        probs.iter().sum::<f64>()
    );
}
