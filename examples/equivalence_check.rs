//! Equivalence checking with exact QMDDs: because algebraic decision
//! diagrams are canonical, checking whether two circuits implement the
//! same unitary reduces to one pointer comparison of the root edges —
//! the design-task payoff the paper highlights in Sec. V-B.
//!
//! ```text
//! cargo run --release --example equivalence_check
//! ```

use aqudd::circuits::{Circuit, Op};
use aqudd::dd::{Edge, GateMatrix, Manager, MatId, QomegaContext};

fn build_unitary(m: &mut Manager<QomegaContext>, c: &Circuit) -> Edge<MatId> {
    let mut u = m.identity();
    for op in c.iter() {
        let Op::Gate {
            matrix,
            target,
            controls,
        } = op
        else {
            unreachable!("gate circuits only");
        };
        let g = m.gate(matrix, *target, controls);
        u = m.mat_mul(&g, &u);
    }
    u
}

fn check(name: &str, a: &Circuit, b: &Circuit) {
    let mut m = Manager::new(QomegaContext::new(), a.n_qubits());
    let ua = build_unitary(&mut m, a);
    let ub = build_unitary(&mut m, b);
    println!(
        "{name}: {}  (root edges {:?} vs {:?})",
        if ua == ub { "EQUIVALENT" } else { "different" },
        ua,
        ub
    );
}

fn main() {
    // 1. A SWAP from three CNOTs vs the qubit-relabelled identity test:
    //    swap · swap = identity.
    let mut swap_twice = Circuit::new(2);
    for _ in 0..2 {
        swap_twice.push_gate(GateMatrix::x(), 1, &[(0, true)]);
        swap_twice.push_gate(GateMatrix::x(), 0, &[(1, true)]);
        swap_twice.push_gate(GateMatrix::x(), 1, &[(0, true)]);
    }
    check("swap² = identity", &swap_twice, &Circuit::new(2));

    // 2. The classic HXH = Z identity.
    let mut hxh = Circuit::new(1);
    hxh.push_gate(GateMatrix::h(), 0, &[]);
    hxh.push_gate(GateMatrix::x(), 0, &[]);
    hxh.push_gate(GateMatrix::h(), 0, &[]);
    let mut z = Circuit::new(1);
    z.push_gate(GateMatrix::z(), 0, &[]);
    check("HXH = Z", &hxh, &z);

    // 3. T⁷ vs T†: equal.
    let mut t7 = Circuit::new(1);
    for _ in 0..7 {
        t7.push_gate(GateMatrix::t(), 0, &[]);
    }
    let mut tdg = Circuit::new(1);
    tdg.push_gate(GateMatrix::tdg(), 0, &[]);
    check("T⁷ = T†", &t7, &tdg);

    // 4. And a near-miss that floating point with a loose tolerance would
    //    wave through: T vs the identity differ by a π/4 phase on one
    //    amplitude — structurally distinct, caught exactly.
    let mut t = Circuit::new(1);
    t.push_gate(GateMatrix::t(), 0, &[]);
    check("T = identity?", &t, &Circuit::new(1));
}
